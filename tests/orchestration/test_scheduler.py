"""FairScheduler unit tests: round-robin fairness, charge attribution,
cancellation cascades and resurrection — all on a fake clock, no HTTP.

The scheduler is the service's policy layer over the fleet coordinator;
these tests pin the invariants the acceptance suite observes end to end
(computed counters summing to the union, cancel sparing shared work) at
the level where they are deterministic.
"""

import pytest

from repro.orchestration import FairScheduler, LocalFleetClient


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _rows(*keys, deps=None):
    """Serialized fan (default) or chained job rows over ``keys``."""
    rows = []
    previous = None
    for key in keys:
        chained = deps == "chain" and previous is not None
        rows.append(
            {
                "kind": "gp",
                "key": key,
                "params": {},
                "deps": [previous] if chained else [],
                "dep_kinds": ["gp"] if chained else [],
            }
        )
        previous = key
    return rows


def _scheduler(ttl=10.0, attempts=3):
    clock = FakeClock()
    return (
        FairScheduler(lease_ttl_s=ttl, max_attempts=attempts, clock=clock),
        clock,
    )


def _tenant_of(key):
    return key[0]  # keys are named "<tenant-letter><index>"


def test_round_robin_interleaves_runs():
    scheduler, _ = _scheduler()
    scheduler.register_run("run-a", "alice", _rows("a0", "a1", "a2", "a3"))
    scheduler.register_run("run-b", "bob", _rows("b0", "b1", "b2", "b3"))
    granted = scheduler.lease("w", max_jobs=4)["jobs"]
    tenants = [_tenant_of(job["key"]) for job in granted]
    # One job per run per round: strict a/b alternation, 2 jobs each.
    assert tenants in (["a", "b", "a", "b"], ["b", "a", "b", "a"])


def test_large_run_cannot_starve_small():
    scheduler, _ = _scheduler()
    scheduler.register_run(
        "big", "alice", _rows(*[f"a{i}" for i in range(10)])
    )
    scheduler.register_run("small", "bob", _rows("b0", "b1"))
    granted = scheduler.lease("w", max_jobs=4)["jobs"]
    tenants = [_tenant_of(job["key"]) for job in granted]
    # The later, smaller run gets a slot in every round it has work.
    assert tenants.count("b") == 2
    # Once the small run drains, the big run takes the whole batch.
    granted = scheduler.lease("w", max_jobs=4)["jobs"]
    assert [_tenant_of(job["key"]) for job in granted] == ["a"] * 4


def test_rotating_offset_shares_first_slot():
    scheduler, _ = _scheduler()
    scheduler.register_run("run-a", "alice", _rows("a0", "a1"))
    scheduler.register_run("run-b", "bob", _rows("b0", "b1"))
    first = _tenant_of(scheduler.lease("w", max_jobs=1)["jobs"][0]["key"])
    second = _tenant_of(scheduler.lease("w", max_jobs=1)["jobs"][0]["key"])
    assert {first, second} == {"a", "b"}  # the start slot rotates


def test_shared_job_charged_to_exactly_one_run():
    scheduler, clock = _scheduler()
    shared = _rows("s0")
    scheduler.register_run("run-a", "alice", shared + _rows("a1"))
    scheduler.register_run("run-b", "bob", shared + _rows("b1"))
    client = LocalFleetClient(scheduler)
    while client.lease("w", max_jobs=8)["jobs"]:
        pass
    charged_a = scheduler.run_snapshot("run-a")["charged"]
    charged_b = scheduler.run_snapshot("run-b")["charged"]
    assert ("s0" in charged_a) ^ ("s0" in charged_b)
    owner = charged_a if "s0" in charged_a else charged_b
    # The charge survives lease expiry and re-lease: attribution is
    # first-scheduler-wins, not last-toucher-wins.
    clock.advance(1000.0)
    release = client.lease("w2", max_jobs=8)["jobs"]
    assert {job["key"] for job in release} == {"s0", "a1", "b1"}
    assert ("s0" in scheduler.run_snapshot("run-a")["charged"]) == (
        owner is charged_a
    )


def test_computed_counters_sum_to_union():
    scheduler, _ = _scheduler()
    shared = _rows("s0", "s1")
    scheduler.register_run("run-a", "alice", shared + _rows("a2"))
    scheduler.register_run("run-b", "bob", shared + _rows("b2"))
    client = LocalFleetClient(scheduler)
    while True:
        jobs = client.lease("w", max_jobs=4)["jobs"]
        if not jobs:
            break
        for job in jobs:
            client.complete("w", job["key"], "computed")
    computed = 0
    for run_id in ("run-a", "run-b"):
        snapshot = scheduler.run_snapshot(run_id)
        charged = set(snapshot["charged"])
        computed += sum(
            1
            for key, result in snapshot["results"].items()
            if key in charged and result == "computed"
        )
        assert snapshot["state"] == "done"
    assert computed == 4  # |{s0, s1, a2, b2}| — the union, exactly once


def test_cancel_spares_shared_and_leased_jobs():
    scheduler, _ = _scheduler()
    scheduler.register_run(
        "run-a", "alice", _rows("s0") + _rows("a1", "a2", deps="chain")
    )
    scheduler.register_run("run-b", "bob", _rows("s0"))
    client = LocalFleetClient(scheduler)
    # Lease until alice's exclusive root a1 is in flight.
    leased = set()
    while "a1" not in leased:
        jobs = client.lease("w", max_jobs=1)["jobs"]
        assert jobs, "a1 never became ready"
        leased |= {job["key"] for job in jobs}

    reply = scheduler.cancel_run("run-a")
    # a2 (exclusive, still pending) is withdrawn; a1 (leased) finishes;
    # s0 (shared with bob's live run) is spared.
    assert reply["cancelled"] == 1
    assert reply["skipped"] == 1
    assert reply["shared"] == 1
    snapshot = scheduler.run_snapshot("run-a")
    assert snapshot["state"] == "cancelled"
    assert snapshot["states"]["a2"] == "cancelled"
    assert snapshot["states"]["a1"] == "leased"
    assert snapshot["states"]["s0"] in ("ready", "leased")

    # The in-flight job still completes normally into the shared store.
    assert client.complete("w", "a1", "computed")["result"] == "computed"
    # Bob's run drains to done: cancellation never touched his job.
    if scheduler.run_snapshot("run-b")["states"]["s0"] != "leased":
        client.lease("w", max_jobs=1)
    client.complete("w", "s0", "computed")
    assert scheduler.run_snapshot("run-b")["state"] == "done"


def test_cancel_cascades_to_exclusive_dependents():
    scheduler, _ = _scheduler()
    scheduler.register_run(
        "run-a", "alice", _rows("a0", "a1", "a2", deps="chain")
    )
    reply = scheduler.cancel_run("run-a")
    assert reply["cancelled"] == 3  # ready root + pending dependents
    assert scheduler.status()["counts"]["outstanding"] == 0


def test_resurrection_after_cancel():
    scheduler, _ = _scheduler()
    rows = _rows("x0", "x1", deps="chain")
    scheduler.register_run("run-a", "alice", rows)
    scheduler.cancel_run("run-a")
    reply = scheduler.register_run("run-c", "cara", rows)
    assert reply["resurrected"] == 2
    assert reply["known"] == 0
    client = LocalFleetClient(scheduler)
    for key in ("x0", "x1"):
        jobs = client.lease("w", max_jobs=1)["jobs"]
        assert [job["key"] for job in jobs] == [key]
        assert jobs[0]["attempt"] == 1  # fresh attempt budget
        client.complete("w", key, "computed")
    assert scheduler.run_snapshot("run-c")["state"] == "done"
    # The cancelled run stays cancelled even though its keys finished.
    assert scheduler.run_snapshot("run-a")["state"] == "cancelled"


def test_cancel_is_idempotent_and_unknown_runs_raise():
    scheduler, _ = _scheduler()
    scheduler.register_run("run-a", "alice", _rows("a0"))
    assert scheduler.cancel_run("run-a")["already_cancelled"] is False
    assert scheduler.cancel_run("run-a")["already_cancelled"] is True
    with pytest.raises(ValueError):
        scheduler.cancel_run("run-z")
    with pytest.raises(ValueError):
        scheduler.run_snapshot("run-z")


def test_duplicate_run_id_rejected():
    scheduler, _ = _scheduler()
    scheduler.register_run("run-a", "alice", _rows("a0"))
    with pytest.raises(ValueError):
        scheduler.register_run("run-a", "alice", _rows("a1"))


def test_orphan_fleet_jobs_schedule_after_fair_rounds():
    scheduler, _ = _scheduler()
    scheduler.enqueue(_rows("o0", "o1"))  # raw fleet protocol, no run
    scheduler.register_run("run-a", "alice", _rows("a0"))
    granted = scheduler.lease("w", max_jobs=3)["jobs"]
    keys = [job["key"] for job in granted]
    # The registered run's slot comes first; orphans fill the batch.
    assert keys[0] == "a0"
    assert set(keys) == {"a0", "o0", "o1"}
