"""Acceptance: every storage backend yields the same sweep, bit for bit.

The PR 2 parity discipline extended to storage: one ``SweepSpec`` run
against the directory backend, the SQLite backend and a live HTTP cache
server (tiered over an *empty* local layer, so every warm read provably
crossed the network) must produce

* **bit-identical** ``results.jsonl`` bytes, and
* a ``--resume`` rerun with **zero recomputed jobs** against each
  backend — including a resume from a store populated only by
  ``repro cache push``.
"""

import pytest

from repro.core.config import QGDPConfig
from repro.evaluation import EvaluationConfig, sweep_spec
from repro.orchestration import (
    ArtifactStore,
    CacheServer,
    DirBackend,
    RemoteHTTPBackend,
    RunSink,
    TieredStore,
    run_sweep,
    sync_stores,
)

TOPOLOGIES = ["grid"]
BENCHMARKS = ["bv-4"]
ENGINES = ["qgdp"]


@pytest.fixture(scope="module")
def spec():
    eval_config = EvaluationConfig(
        num_seeds=2, config=QGDPConfig(gp_iterations=60)
    )
    return sweep_spec(TOPOLOGIES, BENCHMARKS, ENGINES, eval_config)


@pytest.fixture(scope="module")
def storage_root(tmp_path_factory):
    return tmp_path_factory.mktemp("backend_parity")


def _results_bytes(result, directory) -> bytes:
    sink = RunSink(str(directory))
    path = sink.write_results(result.rows)
    with open(path, "rb") as fh:
        return fh.read()


@pytest.fixture(scope="module")
def dir_result(spec, storage_root):
    """The reference run: the historical directory backend."""
    result = run_sweep(spec, cache_dir=str(storage_root / "dir_cache"))
    return result, _results_bytes(result, storage_root / "dir_out")


def test_dir_backend_resume_recomputes_nothing(spec, storage_root, dir_result):
    resumed = run_sweep(
        spec, cache_dir=str(storage_root / "dir_cache"), resume=True
    )
    assert resumed.stats.computed == 0
    assert resumed.stats.cached == resumed.stats.total > 0


def test_sqlite_backend_bit_identical_and_resumable(
    spec, storage_root, dir_result
):
    _reference, reference_bytes = dir_result
    url = f"sqlite:{storage_root / 'cache.db'}"

    store = ArtifactStore.from_url(url)
    cold = run_sweep(spec, store=store)
    store.close()
    assert _results_bytes(cold, storage_root / "sqlite_out") == reference_bytes
    assert cold.stats.computed == cold.stats.total > 0

    fresh = ArtifactStore.from_url(url)
    warm = run_sweep(spec, store=fresh, resume=True)
    fresh.close()
    assert warm.stats.computed == 0
    assert warm.stats.cached == warm.stats.total
    assert _results_bytes(warm, storage_root / "sqlite_warm") == reference_bytes


def test_http_backend_tiered_bit_identical_and_resumable(
    spec, storage_root, dir_result
):
    _reference, reference_bytes = dir_result
    with CacheServer(DirBackend(str(storage_root / "served"))) as server:
        cold_store = TieredStore(
            f"dir:{storage_root / 'tier_local_cold'}", server.url
        )
        cold = run_sweep(spec, store=cold_store)
        assert (
            _results_bytes(cold, storage_root / "http_out") == reference_bytes
        )
        assert cold.stats.computed == cold.stats.total > 0

        # Resume through a *fresh, empty* local layer: every cache hit
        # was necessarily served over HTTP by the remote.
        warm_store = TieredStore(
            f"dir:{storage_root / 'tier_local_warm'}", server.url
        )
        warm = run_sweep(spec, store=warm_store, resume=True)
        assert warm.stats.computed == 0
        assert warm.stats.cached == warm.stats.total
        assert (
            _results_bytes(warm, storage_root / "http_warm") == reference_bytes
        )
        # ... and the read-through warmed the new local layer.
        local = DirBackend(str(storage_root / "tier_local_warm"))
        assert len(local.entries()) == warm.stats.total


def test_remote_only_resume_without_local_layer(spec, storage_root, dir_result):
    _reference, reference_bytes = dir_result
    with CacheServer(DirBackend(str(storage_root / "dir_cache"))) as server:
        store = ArtifactStore(backend=RemoteHTTPBackend(server.url))
        warm = run_sweep(spec, store=store, resume=True)
    assert warm.stats.computed == 0
    assert (
        _results_bytes(warm, storage_root / "remote_only") == reference_bytes
    )


def test_pushed_store_resumes_with_zero_recomputes(
    spec, storage_root, dir_result
):
    """`repro cache push dir:... sqlite:...` makes the sqlite store warm."""
    _reference, reference_bytes = dir_result
    url = f"sqlite:{storage_root / 'pushed.db'}"
    stats = sync_stores(f"dir:{storage_root / 'dir_cache'}", url)
    assert stats.copied > 0

    store = ArtifactStore.from_url(url)
    warm = run_sweep(spec, store=store, resume=True)
    store.close()
    assert warm.stats.computed == 0
    assert warm.stats.cached == warm.stats.total > 0
    assert _results_bytes(warm, storage_root / "pushed_out") == reference_bytes
