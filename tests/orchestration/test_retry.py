"""Transient-fault handling: retry/backoff policy and tiered degradation.

The policy layer is tested with injected sleep/rng (no real waiting);
the HTTP layer against a stub server scripted to fail N times; the
tiered layer against a remote that is simply down.  The seeded
:class:`fault_injection.FlakyBackend` closes the loop: a 30%-flaky
store behind a retry budget must look indistinguishable from a
healthy one.
"""

import json
import random
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.orchestration import (
    DirBackend,
    RemoteHTTPBackend,
    RetryPolicy,
    StoreUnavailable,
    TieredBackend,
    retry_call,
    sync_stores,
)
from fault_injection import FlakyBackend


# -- policy -------------------------------------------------------------------


def test_retry_policy_delays_grow_and_cap():
    policy = RetryPolicy(
        attempts=6, base_delay_s=0.1, max_delay_s=1.0, jitter=0.0
    )
    rng = random.Random(0)
    delays = [policy.delay_s(n, rng) for n in range(1, 6)]
    assert delays == [0.1, 0.2, 0.4, 0.8, 1.0]  # doubled, then capped


def test_retry_policy_jitter_shrinks_within_bounds():
    policy = RetryPolicy(base_delay_s=1.0, max_delay_s=1.0, jitter=0.5)
    rng = random.Random(7)
    for _ in range(100):
        delay = policy.delay_s(1, rng)
        assert 0.5 <= delay <= 1.0  # shrunk by at most `jitter` of itself
    # Seeded rng means a replayed chaos schedule backs off identically.
    assert RetryPolicy().delay_s(2, random.Random(3)) == RetryPolicy().delay_s(
        2, random.Random(3)
    )


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


def test_retry_call_recovers_and_reports():
    state = {"calls": 0}
    slept, retried = [], []

    def flaky_twice():
        state["calls"] += 1
        if state["calls"] <= 2:
            raise StoreUnavailable("transient")
        return "payload"

    result = retry_call(
        flaky_twice,
        RetryPolicy(attempts=5, base_delay_s=0.1, jitter=0.0),
        sleep=slept.append,
        on_retry=lambda failures, exc: retried.append(failures),
    )
    assert result == "payload"
    assert state["calls"] == 3
    assert slept == [0.1, 0.2]
    assert retried == [1, 2]


def test_retry_call_exhausts_budget():
    state = {"calls": 0}

    def always_down():
        state["calls"] += 1
        raise StoreUnavailable("still down")

    with pytest.raises(StoreUnavailable):
        retry_call(
            always_down,
            RetryPolicy(attempts=3, base_delay_s=0.0),
            sleep=lambda _s: None,
        )
    assert state["calls"] == 3  # attempts is the total-call budget


def test_retry_call_non_transient_raises_immediately():
    state = {"calls": 0}

    def broken():
        state["calls"] += 1
        raise ValueError("a bug, not an outage")

    with pytest.raises(ValueError):
        retry_call(broken, RetryPolicy(attempts=5), sleep=lambda _s: None)
    assert state["calls"] == 1


# -- HTTP layer ---------------------------------------------------------------


class _ScriptedHandler(BaseHTTPRequestHandler):
    """Returns 503 for the first ``server.fail_first`` requests, then 200."""

    protocol_version = "HTTP/1.1"

    def log_message(self, *_args):  # noqa: A002
        pass

    def _respond(self):
        self.server.requests += 1
        if self.server.requests <= self.server.fail_first:
            body = b'{"error": "overloaded"}'
            self.send_response(503)
        else:
            body = json.dumps({"ok": True}).encode()
            self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    do_GET = do_HEAD = do_PUT = do_DELETE = _respond


@pytest.fixture()
def scripted_server():
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    httpd.requests = 0
    httpd.fail_first = 0
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield httpd
    httpd.shutdown()
    httpd.server_close()


def _client(httpd, attempts):
    return RemoteHTTPBackend(
        f"http://127.0.0.1:{httpd.server_address[1]}",
        retry=RetryPolicy(attempts=attempts, base_delay_s=0.0, jitter=0.0),
        sleep=lambda _s: None,
    )


def test_remote_backend_retries_5xx_then_succeeds(scripted_server):
    scripted_server.fail_first = 2
    backend = _client(scripted_server, attempts=5)
    assert backend.ping() == {"ok": True}
    assert scripted_server.requests == 3  # two 503s absorbed, then 200
    assert backend.transient_failures == 2


def test_remote_backend_gives_up_after_budget(scripted_server):
    scripted_server.fail_first = 10 ** 6
    backend = _client(scripted_server, attempts=3)
    with pytest.raises(StoreUnavailable) as info:
        backend.get_text("gp", "k")
    assert scripted_server.requests == 3
    assert "HTTP 503" in str(info.value)


def test_remote_backend_unreachable_connection_retries_then_raises():
    backend = RemoteHTTPBackend(
        "http://127.0.0.1:9",  # discard port: nothing listens
        timeout_s=0.2,
        retry=RetryPolicy(attempts=3, base_delay_s=0.0, jitter=0.0),
        sleep=lambda _s: None,
    )
    with pytest.raises(StoreUnavailable):
        backend.get_text("gp", "k")
    assert backend.transient_failures == 3


# -- tiered degradation -------------------------------------------------------


class _DownBackend(FlakyBackend):
    """A remote that is simply gone (100% failure, no inner calls)."""

    def __init__(self):
        super().__init__(inner=None, failure_rate=1.0, seed=0)

    def describe(self):
        return "http://down.example:1"

    def close(self):
        pass


def test_tiered_degrades_to_local_only(tmp_path):
    local = DirBackend(str(tmp_path / "local"))
    remote = _DownBackend()
    tiered = TieredBackend(local, remote)

    with pytest.warns(RuntimeWarning, match="degrading to local-only"):
        tiered.put_text("gp", "k1", '{"v": 1}')
    # The write landed locally despite the outage...
    assert local.get_text("gp", "k1") == '{"v": 1}'
    assert tiered.get_text("gp", "k1") == '{"v": 1}'
    # ...reads/misses fall back instead of raising...
    assert tiered.get_text("gp", "absent") is None
    assert tiered.has("gp", "k1") is True
    assert tiered.has("gp", "absent") is False
    assert [e.key for e in tiered.entries()] == ["k1"]
    # ...and every skipped remote op is counted, warned only once.
    assert tiered.degraded_writes == 1
    assert tiered.degraded_reads >= 2
    assert tiered.degraded_ops == tiered.degraded_reads + tiered.degraded_writes


def test_tiered_strict_mode_still_fails_fast(tmp_path):
    tiered = TieredBackend(
        DirBackend(str(tmp_path / "local")), _DownBackend(), degrade=False
    )
    with pytest.raises(StoreUnavailable):
        tiered.put_text("gp", "k1", '{"v": 1}')


def test_degraded_writes_resync_with_sync_stores(tmp_path):
    local = DirBackend(str(tmp_path / "local"))
    tiered = TieredBackend(local, _DownBackend())
    with pytest.warns(RuntimeWarning):
        for i in range(3):
            tiered.put_text("gp", f"k{i}", f'{{"v": {i}}}')
    assert tiered.degraded_writes == 3

    # The remote comes back (as a fresh healthy store): one sync pass
    # re-converges the fleet cache from the local survivor.
    recovered = DirBackend(str(tmp_path / "recovered"))
    stats = sync_stores(local, recovered)
    assert stats.copied == 3
    assert recovered.get_text("gp", "k2") == '{"v": 2}'


def test_flaky_backend_is_deterministic_and_absorbable(tmp_path):
    # Same seed -> same injected-fault schedule.
    schedule = []
    for _run in range(2):
        flaky = FlakyBackend(
            DirBackend(str(tmp_path / f"s{_run}")), failure_rate=0.3, seed=42
        )
        outcomes = []
        for i in range(30):
            try:
                flaky.put_text("gp", f"k{i}", "{}")
                outcomes.append("ok")
            except StoreUnavailable:
                outcomes.append("fail")
        schedule.append(outcomes)
    assert schedule[0] == schedule[1]
    assert "fail" in schedule[0]  # the chaos actually happened

    # Behind a retry budget the flakiness is invisible to the caller.
    flaky = FlakyBackend(
        DirBackend(str(tmp_path / "absorbed")), failure_rate=0.3, seed=7
    )
    for i in range(20):
        retry_call(
            lambda i=i: flaky.put_text("gp", f"k{i}", f'{{"v": {i}}}'),
            RetryPolicy(attempts=20, base_delay_s=0.0),
            sleep=lambda _s: None,
        )
    assert len(flaky.inner.entries()) == 20
    assert flaky.injected > 0


def test_tiered_degradation_counters_are_thread_safe(tmp_path):
    """Concurrent misses against a down remote never drop a count.

    Regression for the RPR003 lock-discipline finding: the degradation
    counters were bare ``+=`` even though the store contract promises
    thread-safety (serve-cache fronts one backend with a threading HTTP
    server), so parallel readers could lose increments.  Hammering the
    counters from many threads must account for every skipped remote op
    exactly once.
    """
    tiered = TieredBackend(DirBackend(str(tmp_path / "local")), _DownBackend())
    with pytest.warns(RuntimeWarning):  # absorb the one-time warning first
        tiered.get_text("gp", "prime")
    threads_n, reads_per_thread = 8, 50
    start = threading.Barrier(threads_n)

    def hammer():
        start.wait()
        for i in range(reads_per_thread):
            tiered.get_text("gp", f"missing-{i}")

    threads = [threading.Thread(target=hammer) for _ in range(threads_n)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert tiered.degraded_reads == threads_n * reads_per_thread + 1
    assert tiered.degraded_ops == tiered.degraded_reads
