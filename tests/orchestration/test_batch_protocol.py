"""The batched multi-key artifact protocol and its legacy fallback.

``POST /v1/artifacts/get`` / ``.../head`` answer N keys in one round
trip; :class:`RemoteHTTPBackend` chunks multi-key reads through them
(``requests == ceil(N / batch_size)``) and silently degrades to
per-key requests against a server predating the endpoints, counting
every degraded call in ``batch_fallbacks`` — so a mixed-version fleet
keeps identical answers, just different round-trip bills.
"""

import json
import math

import pytest

from repro.orchestration import (
    ArtifactStore,
    CacheServer,
    DirBackend,
    RemoteHTTPBackend,
    StoreError,
    TieredBackend,
)

KIND = "gp"
N = 10


def _warm(backend, n=N):
    """Seed ``n`` artifacts; returns their (kind, key) pairs."""
    pairs = []
    for i in range(n):
        key = f"abc{i:03d}"
        backend.put_text(KIND, key, json.dumps({"i": i}, sort_keys=True))
        pairs.append((KIND, key))
    return pairs


@pytest.fixture()
def batch_server(tmp_path):
    backend = DirBackend(str(tmp_path / "modern"))
    server = CacheServer(backend).start()
    yield server
    server.stop()


@pytest.fixture()
def legacy_server(tmp_path):
    # A server predating the batch endpoints: they answer 404 there.
    backend = DirBackend(str(tmp_path / "legacy"))
    server = CacheServer(backend, batch_endpoints=False).start()
    yield server
    server.stop()


def test_batched_reads_cost_ceil_n_over_batch(batch_server):
    pairs = _warm(batch_server.backend)
    client = RemoteHTTPBackend(batch_server.url, batch_size=4)

    values = client.get_many(pairs)
    assert client.requests == math.ceil(N / 4)  # 3, not 10
    assert client.batch_fallbacks == 0
    assert values == {
        pair: json.dumps({"i": i}, sort_keys=True)
        for i, pair in enumerate(pairs)
    }

    present = client.has_many(pairs + [(KIND, "missing0")])
    assert client.requests == math.ceil(N / 4) + math.ceil((N + 1) / 4)
    assert present[(KIND, "missing0")] is False
    assert all(present[pair] for pair in pairs)


def test_misses_are_none_not_errors(batch_server):
    client = RemoteHTTPBackend(batch_server.url, batch_size=8)
    values = client.get_many([(KIND, "nope1"), (KIND, "nope2")])
    assert values == {(KIND, "nope1"): None, (KIND, "nope2"): None}
    assert client.requests == 1


def test_legacy_server_degrades_to_per_key(legacy_server):
    pairs = _warm(legacy_server.backend)
    client = RemoteHTTPBackend(legacy_server.url, batch_size=4)

    values = client.get_many(pairs)
    # One probing batch call (404) + one request per key.
    assert client.requests == 1 + N
    assert client.batch_fallbacks == 1
    assert values[pairs[0]] is not None
    # The 404 is cached: later multi-key calls skip the probe but
    # still count as degraded.
    present = client.has_many(pairs)
    assert client.requests == 1 + N + N
    assert client.batch_fallbacks == 2
    assert all(present.values())


def test_mixed_version_fleet_agrees_on_answers(batch_server, legacy_server):
    pairs = _warm(batch_server.backend)
    _warm(legacy_server.backend)
    modern = RemoteHTTPBackend(batch_server.url, batch_size=4)
    degraded = RemoteHTTPBackend(legacy_server.url, batch_size=4)
    assert modern.get_many(pairs) == degraded.get_many(pairs)
    assert modern.has_many(pairs) == degraded.has_many(pairs)
    assert modern.batch_fallbacks == 0
    assert degraded.batch_fallbacks > 0


def test_batch_item_validation(batch_server):
    # Malformed batch bodies are 400s, which a *modern* client never
    # sends — but raw callers get a real error, not a silent [].
    import urllib.error
    import urllib.request

    for body in (b"[]", b'{"items": [{"kind": "gp"}]}',
                 b'{"items": [{"kind": "../x", "key": "y"}]}'):
        request = urllib.request.Request(
            f"{batch_server.url}/v1/artifacts/head",
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400


def test_oversized_batch_rejected_client_side(batch_server):
    client = RemoteHTTPBackend(batch_server.url, batch_size=4)
    with pytest.raises(ValueError):
        RemoteHTTPBackend(batch_server.url, batch_size=0)
    assert client.get_many([]) == {}
    assert client.requests == 0  # empty reads never hit the network


def test_tiered_backend_batches_remote_misses(batch_server, tmp_path):
    pairs = _warm(batch_server.backend)
    local = DirBackend(str(tmp_path / "local"))
    remote = RemoteHTTPBackend(batch_server.url, batch_size=4)
    tiered = TieredBackend(local, remote)

    values = tiered.get_many(pairs)
    assert all(values[pair] is not None for pair in pairs)
    assert remote.requests == math.ceil(N / 4)
    # Remote hits were written back: a second pass is local-only.
    before = remote.requests
    again = tiered.get_many(pairs)
    assert again == values
    assert remote.requests == before


def test_store_prefetch_uses_batches(batch_server):
    pairs = _warm(batch_server.backend)
    remote = RemoteHTTPBackend(batch_server.url, batch_size=4)
    store = ArtifactStore(backend=remote)
    warmed = store.prefetch(pairs + [(KIND, "missing9")])
    assert warmed[(KIND, "missing9")] is None
    assert all(warmed[pair] == {"i": i} for i, pair in enumerate(pairs))
    assert remote.requests == math.ceil((N + 1) / 4)
    # Prefetched payloads are memory hits afterwards.
    before = remote.requests
    for i, (kind, key) in enumerate(pairs):
        assert store.get(kind, key) == {"i": i}
    assert remote.requests == before


def test_batch_size_mismatch_is_a_protocol_error(batch_server):
    client = RemoteHTTPBackend(batch_server.url, batch_size=4)

    real_request = client._request

    def lying_request(url, method="GET", body=None):
        status, payload = real_request(url, method=method, body=body)
        if "/v1/artifacts/" in url and status == 200:
            document = json.loads(payload.decode("utf-8"))
            document["items"] = document["items"][:-1]  # drop one
            # repro: lint-ignore[RPR002] transport tampering for the test
            payload = json.dumps(document).encode("utf-8")
        return status, payload

    client._request = lying_request
    with pytest.raises(StoreError):
        client.get_many([(KIND, "k1"), (KIND, "k2")])
