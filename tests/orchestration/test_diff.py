"""``repro diff``: manifest/results comparison between two runs."""

import json

import pytest

from repro.orchestration import RunDiff, diff_runs, format_diff, load_run


def _entry(key, kind="lg", status="computed", **params):
    entry = {
        "key": key,
        "kind": kind,
        "topology": params.get("topology", "grid"),
        "engine": params.get("engine"),
        "benchmark": params.get("benchmark"),
        "seed": params.get("seed"),
        "status": status,
    }
    return entry


def _run(entries, rows=None):
    return {
        "manifest": {"jobs": {"entries": entries}},
        "rows": rows,
        "path": "<memory>",
    }


def _cell_row(topology="grid", benchmark="bv-4", engine="qgdp", mean=0.5,
              **extra):
    row = {
        "topology": topology,
        "benchmark": benchmark,
        "engine": engine,
        "mean": mean,
        "samples": [mean],
    }
    row.update(extra)
    return row


def test_identical_runs_are_an_empty_diff():
    a = _run(
        [_entry("k1", status="computed"), _entry("k2", status="computed")],
        [_cell_row()],
    )
    b = _run(
        [_entry("k1", status="cached"), _entry("k2", status="cached")],
        [_cell_row()],
    )
    diff = diff_runs(a, b)
    assert diff.is_empty
    assert "identical" in format_diff(diff)


def test_recomputed_job_is_reported():
    a = _run([_entry("k1", status="computed")], [_cell_row()])
    b = _run([_entry("k1", status="computed")], [_cell_row()])
    diff = diff_runs(a, b)
    assert not diff.is_empty
    assert [e["key"] for e in diff.recomputed_jobs] == ["k1"]
    assert diff.added_jobs == [] and diff.removed_jobs == []
    assert "1 recomputed" in format_diff(diff)


def test_added_and_removed_jobs():
    a = _run([_entry("k1"), _entry("k2", kind="gp")])
    b = _run([_entry("k1", status="cached"), _entry("k3", kind="dp")])
    diff = diff_runs(a, b)
    assert [e["key"] for e in diff.added_jobs] == ["k3"]
    assert [e["key"] for e in diff.removed_jobs] == ["k2"]
    text = format_diff(diff)
    assert "+ dp grid" in text and "- gp grid" in text


def test_changed_cell_reports_fields():
    a = _run([_entry("k1", status="cached")], [_cell_row(mean=0.5)])
    b = _run([_entry("k1", status="cached")], [_cell_row(mean=0.75)])
    diff = diff_runs(a, b)
    assert diff.changed_cells == [
        {"cell": ["grid", "bv-4", "qgdp"], "fields": ["mean", "samples"]}
    ]
    assert "~ grid/bv-4/qgdp: mean, samples" in format_diff(diff)


def test_wallclock_fields_are_ignored():
    a = _run(
        [_entry("k1", status="cached")],
        [_cell_row(qubit_time_s=0.010, dp_time_s=0.5)],
    )
    b = _run(
        [_entry("k1", status="cached")],
        [_cell_row(qubit_time_s=0.999, dp_time_s=0.1)],
    )
    assert diff_runs(a, b).is_empty


def test_added_and_removed_cells():
    a = _run([_entry("k1", status="cached")], [_cell_row(benchmark="bv-4")])
    b = _run([_entry("k1", status="cached")], [_cell_row(benchmark="qaoa-4")])
    diff = diff_runs(a, b)
    assert diff.added_cells == [["grid", "qaoa-4", "qgdp"]]
    assert diff.removed_cells == [["grid", "bv-4", "qgdp"]]


def test_tables_rows_without_benchmark_diff_cleanly():
    # repro tables rows key by (topology, None, engine).
    row_a = {"topology": "grid", "engine": "qgdp", "metrics": {"crossings": 2}}
    row_b = {"topology": "grid", "engine": "qgdp", "metrics": {"crossings": 1}}
    diff = diff_runs(
        _run([_entry("k1", status="cached")], [row_a]),
        _run([_entry("k1", status="cached")], [row_b]),
    )
    assert diff.changed_cells == [
        {"cell": ["grid", None, "qgdp"], "fields": ["metrics"]}
    ]
    assert "~ grid/qgdp: metrics" in format_diff(diff)


def test_load_run_accepts_directory_and_manifest_path(tmp_path):
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    manifest = {"run_id": "x", "jobs": {"entries": [_entry("k1")]}}
    (run_dir / "manifest.json").write_text(json.dumps(manifest))
    (run_dir / "results.jsonl").write_text(json.dumps(_cell_row()) + "\n")

    from_dir = load_run(str(run_dir))
    from_file = load_run(str(run_dir / "manifest.json"))
    assert from_dir["manifest"] == manifest == from_file["manifest"]
    assert from_dir["rows"] == [_cell_row()] == from_file["rows"]


def test_load_run_without_results_file(tmp_path):
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    (run_dir / "manifest.json").write_text(
        json.dumps({"jobs": {"entries": []}})
    )
    assert load_run(str(run_dir))["rows"] is None


def test_load_run_rejects_missing_and_legacy_manifests(tmp_path):
    with pytest.raises(ValueError, match="cannot read"):
        load_run(str(tmp_path / "nope"))
    legacy = tmp_path / "manifest.json"
    legacy.write_text(json.dumps({"jobs": {"computed": 3}}))
    with pytest.raises(ValueError, match="entries"):
        load_run(str(legacy))
    legacy.write_text("{not json")
    with pytest.raises(ValueError, match="not valid JSON"):
        load_run(str(legacy))


def test_long_sections_are_elided():
    a = _run([])
    b = _run([_entry(f"k{i}") for i in range(25)])
    text = format_diff(diff_runs(a, b))
    assert "... and 5 more" in text


def test_empty_rundiff_dataclass():
    assert RunDiff().is_empty


def test_load_run_wraps_corrupt_results_file(tmp_path):
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    (run_dir / "manifest.json").write_text(
        json.dumps({"jobs": {"entries": []}})
    )
    (run_dir / "results.jsonl").write_text("{truncated")
    with pytest.raises(ValueError, match="cannot read results"):
        load_run(str(run_dir))
