"""Fleet coordination: lease lifecycle, worker loop, end-to-end sweeps.

The scheduling invariants the coordinator promises (no job leased twice
concurrently, no job ever lost, failed DAG prefixes cascade) are pinned
three ways: direct unit tests with a fake clock, a hypothesis property
test over random lease/expire/complete interleavings, and an in-process
two-worker fleet over a real HTTP server compared bit-for-bit against a
serial run.
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import QGDPConfig
from repro.orchestration import (
    ArtifactStore,
    CacheServer,
    FleetClient,
    FleetCoordinator,
    FleetError,
    Job,
    JobGraph,
    LocalFleetClient,
    RetryPolicy,
    SqliteBackend,
    SweepSpec,
    config_to_dict,
    plan_sweep,
    run_fleet_sweep,
    run_sweep,
    run_worker,
    serialize_graph,
)

_CFG = config_to_dict(QGDPConfig(gp_iterations=40))


class FakeClock:
    """A controllable monotonic clock for lease-expiry tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _chain_jobs(n=3):
    """n serialized jobs: job i depends on job i-1 (keys 'k0'..'k{n-1}')."""
    rows = []
    for i in range(n):
        rows.append(
            {
                "kind": "gp",
                "key": f"k{i}",
                "params": {"topology": f"t{i}"},
                "deps": [f"k{i - 1}"] if i else [],
                "dep_kinds": ["gp"] if i else [],
            }
        )
    return rows


def _fan_jobs(n=4):
    """n independent jobs (no deps)."""
    return [
        {"kind": "gp", "key": f"f{i}", "params": {}, "deps": [],
         "dep_kinds": []}
        for i in range(n)
    ]


def _coordinator(ttl=10.0, attempts=3):
    clock = FakeClock()
    return FleetCoordinator(
        lease_ttl_s=ttl, max_attempts=attempts, clock=clock
    ), clock


# -- coordinator unit tests ---------------------------------------------------


def test_enqueue_is_idempotent_and_topological():
    coord, _ = _coordinator()
    summary = coord.enqueue(_chain_jobs())
    assert summary["accepted"] == 3 and summary["known"] == 0
    again = coord.enqueue(_chain_jobs())
    assert again["accepted"] == 0 and again["known"] == 3
    with pytest.raises(ValueError):
        coord.enqueue(
            [{"kind": "gp", "key": "x", "params": {}, "deps": ["missing"],
              "dep_kinds": ["gp"]}]
        )


def test_only_ready_jobs_are_leased():
    coord, _ = _coordinator()
    coord.enqueue(_chain_jobs())
    reply = coord.lease("w1", max_jobs=10)
    # Only the chain head is dependency-free.
    assert [j["key"] for j in reply["jobs"]] == ["k0"]
    # And it is not leased to anyone else concurrently.
    assert coord.lease("w2", max_jobs=10)["jobs"] == []


def test_completion_releases_dependents():
    coord, _ = _coordinator()
    coord.enqueue(_chain_jobs())
    coord.lease("w1")
    assert coord.complete("w1", "k0", "computed")["result"] == "computed"
    reply = coord.lease("w1")
    assert [j["key"] for j in reply["jobs"]] == ["k1"]
    coord.complete("w1", "k1", "computed")
    coord.complete("w1", "k2", "computed")  # leased implicitly? no —
    # k2 was never leased, but a completion for a known ready job is
    # still recorded (content-addressed: the artifact exists either way).
    assert coord.status()["outstanding"] == 0


def test_expired_lease_is_requeued_and_logged():
    coord, clock = _coordinator(ttl=10.0)
    coord.enqueue(_fan_jobs(1))
    assert coord.lease("w1")["jobs"]
    clock.advance(11.0)
    reply = coord.lease("w2")
    assert [j["key"] for j in reply["jobs"]] == ["f0"]
    assert reply["jobs"][0]["attempt"] == 2
    kinds = [f["error_type"] for f in coord.failures]
    assert kinds == ["LeaseExpired"]
    assert coord.failures[0]["worker"] == "w1"


def test_heartbeat_extends_leases():
    coord, clock = _coordinator(ttl=10.0)
    coord.enqueue(_fan_jobs(1))
    coord.lease("w1")
    clock.advance(8.0)
    assert coord.heartbeat("w1")["keys"] == ["f0"]
    clock.advance(8.0)  # 16s since lease, 8s since heartbeat: still held
    assert coord.lease("w2")["jobs"] == []
    assert coord.heartbeat("w1")["keys"] == ["f0"]


def test_attempt_budget_fails_job_permanently_and_cascades():
    coord, clock = _coordinator(ttl=10.0, attempts=2)
    coord.enqueue(_chain_jobs(3))
    for _ in range(2):  # burn both attempts via expiry
        assert coord.lease("w1")["jobs"]
        clock.advance(11.0)
    status = coord.status()
    assert status["counts"]["failed"] == 3  # the job and its dependents
    assert status["outstanding"] == 0  # a watcher terminates
    kinds = [f["error_type"] for f in status["failures"]]
    assert kinds.count("LeaseExpired") == 2
    assert kinds.count("UpstreamFailed") == 2


def test_worker_failure_requeues_until_budget():
    coord, _ = _coordinator(attempts=2)
    coord.enqueue(_fan_jobs(1))
    coord.lease("w1")
    coord.complete(
        "w1", "f0", "failed",
        error={"error_type": "RuntimeError", "error": "boom"},
    )
    assert coord.lease("w2")["jobs"]  # requeued: one attempt left
    coord.complete(
        "w2", "f0", "failed",
        error={"error_type": "RuntimeError", "error": "boom again"},
    )
    status = coord.status()
    assert status["counts"]["failed"] == 1
    assert [f["error"] for f in status["failures"]] == ["boom", "boom again"]
    assert [f["worker"] for f in status["failures"]] == ["w1", "w2"]


def test_released_job_refunds_attempt():
    coord, _ = _coordinator(attempts=1)
    coord.enqueue(_fan_jobs(1))
    coord.lease("w1")
    coord.complete("w1", "f0", "released")
    # With max_attempts=1 a *consumed* attempt would have been final;
    # the refund makes the job leasable again.
    reply = coord.lease("w2")
    assert [j["key"] for j in reply["jobs"]] == ["f0"]
    assert reply["jobs"][0]["attempt"] == 1
    coord.complete("w2", "f0", "computed")
    assert coord.status()["outstanding"] == 0


def test_late_completion_after_expiry_is_accepted_once():
    coord, clock = _coordinator(ttl=10.0)
    coord.enqueue(_fan_jobs(1))
    coord.lease("w1")
    clock.advance(11.0)
    coord.lease("w2")  # steals the job
    # w1 finished anyway (it never heard the lease died): content-
    # addressed artifacts make this a valid completion.
    assert coord.complete("w1", "f0", "computed")["result"] == "computed"
    # w2's duplicate completion is acknowledged, not double-counted.
    assert coord.complete("w2", "f0", "computed")["result"] == "duplicate"
    assert len(coord.entries) == 1
    assert coord.status()["counts"]["done"] == 1


def test_late_success_cannot_resurrect_a_failed_dag():
    coord, clock = _coordinator(ttl=10.0, attempts=1)
    coord.enqueue(_chain_jobs(2))
    coord.lease("w1")
    clock.advance(11.0)
    coord.status()  # trigger expiry: budget spent, k0 + k1 failed
    assert coord.status()["counts"]["failed"] == 2
    reply = coord.complete("w1", "k0", "computed")
    assert reply["result"] == "already-failed"
    assert coord.status()["counts"]["failed"] == 2
    assert coord.status()["counts"]["done"] == 0


def test_enqueue_under_failed_dependency_fails_immediately():
    coord, clock = _coordinator(ttl=10.0, attempts=1)
    coord.enqueue(_fan_jobs(1))
    coord.lease("w1")
    clock.advance(11.0)
    coord.status()  # f0 now failed permanently
    coord.enqueue(
        [{"kind": "lg", "key": "child", "params": {}, "deps": ["f0"],
          "dep_kinds": ["gp"]}]
    )
    status = coord.status()
    assert status["counts"]["failed"] == 2
    assert status["outstanding"] == 0
    assert any(
        f["key"] == "child" and f["error_type"] == "UpstreamFailed"
        for f in status["failures"]
    )


def test_unknown_requests_are_rejected():
    coord, _ = _coordinator()
    with pytest.raises(ValueError):
        coord.lease("w1", max_jobs=0)
    with pytest.raises(ValueError):
        coord.complete("w1", "nope", "computed")
    coord.enqueue(_fan_jobs(1))
    coord.lease("w1")
    with pytest.raises(ValueError):
        coord.complete("w1", "f0", "exploded")


def test_serialize_graph_carries_dep_kinds():
    graph = JobGraph()
    gp = graph.add(
        Job.create(
            "gp", {"topology": "grid", "config": _CFG, "seed": _CFG["seed"]}
        )
    )
    graph.add(
        Job.create(
            "lg", {"topology": "grid", "engine": "qgdp", "config": _CFG},
            deps=(gp.key,),
        )
    )
    rows = serialize_graph(graph)
    assert [r["kind"] for r in rows] == ["gp", "lg"]
    assert rows[1]["deps"] == [gp.key]
    assert rows[1]["dep_kinds"] == ["gp"]


# -- hypothesis: lease-lifecycle invariants -----------------------------------

# Each op drives one coordinator transition; the generators stay tiny so
# shrunk counterexamples read as a schedule.
_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("lease"), st.sampled_from(["wa", "wb", "wc"])),
        st.tuples(st.just("advance"), st.sampled_from([4.0, 6.0, 11.0])),
        st.tuples(st.just("heartbeat"), st.sampled_from(["wa", "wb", "wc"])),
        st.tuples(st.just("complete"), st.sampled_from(["ok", "fail"])),
        st.tuples(st.just("release"), st.just(None)),
    ),
    max_size=40,
)


@settings(max_examples=60, deadline=None)
@given(ops=_OPS, shape=st.sampled_from(["chain", "fan"]))
def test_lease_lifecycle_invariants(ops, shape):
    """Under any interleaving of lease / expiry / completion / drain:
    no job is leased to two workers at once, counts always add up, and
    draining afterwards leaves every job done or failed — never lost."""
    coord, clock = _coordinator(ttl=10.0, attempts=3)
    jobs = _chain_jobs(3) if shape == "chain" else _fan_jobs(3)
    coord.enqueue(jobs)
    held = {}  # key -> worker (our model of live leases)

    def sync_model():
        # Rebuild the model from ledgers/status: revoked and finished
        # leases disappear; a key must never be held by two workers.
        alive = {}
        for worker in ("wa", "wb", "wc"):
            for key in coord.heartbeat(worker)["keys"]:
                assert key not in alive, f"{key} leased to two workers"
                alive[key] = worker
        return alive

    for op, arg in ops:
        if op == "lease":
            coord.lease(arg, max_jobs=2)
        elif op == "advance":
            clock.advance(arg)
        elif op == "heartbeat":
            coord.heartbeat(arg)
        elif op in ("complete", "release"):
            held = sync_model()
            if not held:
                continue
            key, worker = next(iter(held.items()))
            if op == "release":
                coord.complete(worker, key, "released")
            elif arg == "ok":
                coord.complete(worker, key, "computed")
            else:
                coord.complete(
                    worker, key, "failed",
                    error={"error_type": "X", "error": "injected"},
                )
        counts = coord.status()["counts"]
        assert counts["total"] == 3
        assert sum(counts[s] for s in
                   ("pending", "ready", "leased", "done", "failed")) == 3
        sync_model()

    # Drain: a cooperative worker must always be able to finish the
    # fleet — nothing may be stuck leased/pending forever.
    for _ in range(50):
        status = coord.status()
        if status["outstanding"] == 0:
            break
        reply = coord.lease("drain", max_jobs=3)
        for job in reply["jobs"]:
            coord.complete("drain", job["key"], "computed")
        if not reply["jobs"]:
            clock.advance(11.0)  # let stragglers' leases expire
    final = coord.status()
    assert final["outstanding"] == 0
    assert final["counts"]["done"] + final["counts"]["failed"] == 3
    # No job lost: every enqueued key reached a terminal ledger.
    done_keys = {e["key"] for e in final["entries"]}
    failed_keys = {f["key"] for f in final["failures"]}
    assert {j["key"] for j in jobs} <= done_keys | failed_keys


# -- worker loop + HTTP end-to-end -------------------------------------------


def _tiny_spec():
    return SweepSpec(
        topologies=("grid",),
        benchmarks=("bv-4",),
        engines=("qgdp", "tetris"),
        num_seeds=2,
        config=_CFG,
    )


@pytest.fixture()
def fleet_server(tmp_path):
    coordinator = FleetCoordinator(lease_ttl_s=30.0, max_attempts=3)
    backend = SqliteBackend(str(tmp_path / "store.db"))
    server = CacheServer(backend, coordinator=coordinator).start()
    yield server
    server.stop()
    backend.close()


def test_two_workers_complete_a_fleet_sweep(fleet_server):
    spec = _tiny_spec()
    # Enqueue up front so the workers (exit_when_idle) never race the
    # watcher's own — idempotent — enqueue and quit before work exists.
    plan = plan_sweep(spec)
    FleetClient(fleet_server.url).enqueue(serialize_graph(plan.graph))

    workers = []
    for name in ("w1", "w2"):
        worker_store = ArtifactStore.from_url(fleet_server.url)
        thread = threading.Thread(
            target=lambda s=worker_store, n=name: run_worker(
                fleet_server.url, s, worker_id=n, batch_size=2, poll_s=0.02
            )
        )
        thread.start()
        workers.append(thread)

    result = run_fleet_sweep(spec, fleet_server.url, poll_s=0.05)
    for thread in workers:
        thread.join(timeout=300)
        assert not thread.is_alive()

    serial = run_sweep(spec, workers=0)
    assert result.rows == serial.rows  # bit-identical cells
    assert [e["key"] for e in result.stats.entries] == [
        j.key for j in plan.graph.ordered()
    ]
    assert result.manifest["jobs"]["failures"] == []
    fleet = result.manifest["fleet"]
    assert set(fleet["workers"]) >= {"w1", "w2"}
    assert result.manifest["run_id"].endswith("-fleet")


def test_fleet_sweep_reports_permanent_failures(fleet_server):
    client = FleetClient(fleet_server.url)
    spec = _tiny_spec()
    plan = plan_sweep(spec)
    client.enqueue(serialize_graph(plan.graph))
    # Fail the root gp job (first in insertion order, so first leased)
    # through its whole attempt budget: its dependents cascade-fail.
    for _ in range(3):
        reply = client.lease("saboteur", max_jobs=1)
        assert reply["jobs"]
        client.complete(
            "saboteur",
            reply["jobs"][0]["key"],
            "failed",
            error={"error_type": "RuntimeError", "error": "sabotage"},
        )
    # Fake-complete the independent transpile jobs so the fleet
    # terminates (the watcher raises before it ever reads their cells).
    while True:
        reply = client.lease("saboteur", max_jobs=50)
        if not reply["jobs"]:
            break
        for job in reply["jobs"]:
            client.complete("saboteur", job["key"], "computed")
    with pytest.raises(FleetError) as info:
        run_fleet_sweep(spec, fleet_server.url, poll_s=0.05)
    kinds = {f["error_type"] for f in info.value.failures}
    assert "RuntimeError" in kinds and "UpstreamFailed" in kinds


def test_worker_drains_gracefully_on_stop(fleet_server):
    client = FleetClient(fleet_server.url)
    client.enqueue(_fan_jobs(4))
    stop = threading.Event()
    store = ArtifactStore.from_url(fleet_server.url)
    # SIGTERM arriving right after a batch is leased: every unstarted
    # job must be handed back as "released" with its attempt refunded.
    stats = run_worker(
        fleet_server.url, store, worker_id="drainer", batch_size=4,
        poll_s=0.02, stop=stop,
        progress=lambda event, job: stop.set() if event == "lease" else None,
    )
    assert stats.drained
    assert stats.released == 4
    assert stats.computed == stats.failed == 0
    # The next worker can lease everything immediately (no TTL wait),
    # and the refund means these are still first attempts.
    reply = client.lease("next", max_jobs=4)
    assert len(reply["jobs"]) == 4
    assert {j["attempt"] for j in reply["jobs"]} == {1}


def test_worker_sigterm_drain_deterministic():
    """The SIGTERM-drain contract, pinned without HTTP, subprocesses or
    wall-clock waits: a stop arriving right after a lease hands every
    unstarted job back immediately (no TTL expiry on the fake clock)
    with its attempt budget refunded."""
    clock = FakeClock()
    coordinator = FleetCoordinator(
        lease_ttl_s=10.0, max_attempts=3, clock=clock
    )
    client = LocalFleetClient(coordinator)
    client.enqueue(_fan_jobs(4))
    stop = threading.Event()
    stats = run_worker(
        client,
        ArtifactStore(),  # memory-only: nothing executes before stop
        worker_id="drainer",
        batch_size=4,
        poll_s=0.0,
        stop=stop,
        sleep=lambda _s: None,
        progress=lambda event, job: (
            stop.set() if event == "lease" else None
        ),
    )
    assert stats.drained
    assert stats.leases == 4 and stats.released == 4
    assert stats.computed == stats.cached == stats.failed == 0
    # The release is immediate — the fake clock never advanced, so no
    # lease TTL could have expired — and refunds the attempt, so the
    # next worker gets all four jobs as first attempts.
    assert clock.now == 0.0
    reply = client.lease("next", max_jobs=4)
    assert len(reply["jobs"]) == 4
    assert {job["attempt"] for job in reply["jobs"]} == {1}
    assert coordinator.status()["counts"]["leased"] == 4


def test_worker_reports_dependency_unavailable(fleet_server):
    # Enqueue a DAG whose dependency artifact is *not* in the store and
    # whose parent is completed behind the worker's back.
    client = FleetClient(fleet_server.url)
    client.enqueue(_chain_jobs(2))
    client.lease("ghost")
    client.complete("ghost", "k0", "computed")  # artifact never written
    store = ArtifactStore.from_url(fleet_server.url)
    stats = run_worker(
        fleet_server.url, store, worker_id="w", poll_s=0.02,
        store_retry=RetryPolicy(attempts=2, base_delay_s=0.0),
    )
    assert stats.failed >= 1
    failures = client.status()["failures"]
    assert any(
        f["error_type"] == "DependencyUnavailable" for f in failures
    )


# -- concurrent SQLite writers stress ----------------------------------------


def test_concurrent_sqlite_writers_stress(tmp_path):
    """Many threads, each with its own connection to one shared database
    file, hammering interleaved writes: every artifact must land intact
    (WAL + busy timeout make this the supported single-host layout)."""
    path = str(tmp_path / "shared.db")
    threads, errors = [], []

    def writer(worker_index):
        backend = SqliteBackend(path)
        try:
            for i in range(25):
                key = f"w{worker_index}-{i}"
                backend.put_text("gp", key, f'{{"v": {worker_index * 1000 + i}}}')
                if backend.get_text("gp", key) is None:
                    errors.append(f"lost {key}")
        except Exception as exc:  # noqa: BLE001 - collected for the assert
            errors.append(repr(exc))
        finally:
            backend.close()

    for index in range(8):
        thread = threading.Thread(target=writer, args=(index,))
        thread.start()
        threads.append(thread)
    for thread in threads:
        thread.join(timeout=120)
    assert errors == []

    check = SqliteBackend(path)
    try:
        entries = check.entries()
        assert len(entries) == 8 * 25
        for worker_index in range(8):
            for i in range(25):
                text = check.get_text("gp", f"w{worker_index}-{i}")
                assert text == f'{{"v": {worker_index * 1000 + i}}}'
    finally:
        check.close()
