"""Storage backend contract: every backend speaks the same protocol.

One parametrized suite drives DirBackend, SqliteBackend and a
RemoteHTTPBackend talking to a live in-process cache server through the
shared get/put/has/entries/delete contract, plus backend-specific
behavior: dir-layout byte compatibility, sqlite cross-instance
persistence, tier write-back, URL resolution and store syncing.
"""

import json
import os

import pytest

from repro.orchestration import (
    ArtifactStore,
    CacheServer,
    DirBackend,
    RemoteHTTPBackend,
    SqliteBackend,
    StoreUnavailable,
    TieredBackend,
    TieredStore,
    backend_from_url,
    resolve_store,
    sync_stores,
)


@pytest.fixture(params=["dir", "sqlite", "remote"])
def backend(request, tmp_path):
    if request.param == "dir":
        yield DirBackend(str(tmp_path / "cache"))
    elif request.param == "sqlite":
        with SqliteBackend(str(tmp_path / "cache.db")) as made:
            yield made
    else:
        with CacheServer(DirBackend(str(tmp_path / "served"))) as server:
            yield RemoteHTTPBackend(server.url)


def test_backend_roundtrip(backend):
    assert backend.get_text("gp", "k") is None
    assert not backend.has("gp", "k")
    backend.put_text("gp", "k", '{"x": 1.5}')
    assert backend.has("gp", "k")
    assert backend.get_text("gp", "k") == '{"x": 1.5}'


def test_backend_text_is_byte_preserved(backend):
    # The store's canonical text must come back verbatim — including
    # float repr digits — or cross-backend parity would break.
    text = json.dumps({"v": 0.1 + 0.2, "order": {"b": 1, "a": 2}})
    backend.put_text("fidelity", "key", text)
    assert backend.get_text("fidelity", "key") == text


def test_backend_overwrite_and_delete(backend):
    backend.put_text("lg", "k", '{"n": 1}')
    backend.put_text("lg", "k", '{"n": 2}')
    assert backend.get_text("lg", "k") == '{"n": 2}'
    assert backend.delete("lg", "k")
    assert not backend.delete("lg", "k")
    assert backend.get_text("lg", "k") is None


def test_backend_entries_inventory(backend):
    backend.put_text("gp", "a", '{"x": 1}')
    backend.put_text("lg", "b", '{"y": 22}')
    entries = {(e.kind, e.key): e for e in backend.entries()}
    assert set(entries) == {("gp", "a"), ("lg", "b")}
    assert entries[("gp", "a")].size == len('{"x": 1}')
    assert all(e.mtime > 0 for e in entries.values())


def test_dir_backend_matches_historical_layout(tmp_path):
    # Byte-for-byte the layout ArtifactStore always wrote: an existing
    # .repro_cache keeps working, and no stray tmp files survive a put.
    root = str(tmp_path / "cache")
    made = DirBackend(root)
    made.put_text("lg", "abc", '{"positions": [1, 2]}')
    path = os.path.join(root, "lg", "abc.json")
    assert open(path).read() == '{"positions": [1, 2]}'
    assert not [p for p in os.listdir(os.path.dirname(path)) if p.endswith(".tmp")]
    # entries() never mistakes runs/<run_id>/*.json for artifacts.
    runs = tmp_path / "cache" / "runs" / "run1"
    runs.mkdir(parents=True)
    (runs / "manifest.json").write_text("{}")
    assert {(e.kind, e.key) for e in made.entries()} == {("lg", "abc")}


def test_sqlite_backend_persists_across_instances(tmp_path):
    path = str(tmp_path / "cache.db")
    with SqliteBackend(path) as first:
        first.put_text("gp", "k", '{"x": 3}')
    with SqliteBackend(path) as second:
        assert second.get_text("gp", "k") == '{"x": 3}'


def test_sqlite_backend_concurrent_instances(tmp_path):
    # Two open handles on one database (two sharded runs on a shared
    # filesystem): writes through either are visible to the other.
    path = str(tmp_path / "cache.db")
    with SqliteBackend(path) as a, SqliteBackend(path) as b:
        a.put_text("gp", "from-a", '{"n": 1}')
        b.put_text("gp", "from-b", '{"n": 2}')
        assert a.get_text("gp", "from-b") == '{"n": 2}'
        assert b.get_text("gp", "from-a") == '{"n": 1}'


def test_tiered_backend_write_back_and_dual_write(tmp_path):
    local = DirBackend(str(tmp_path / "local"))
    remote = DirBackend(str(tmp_path / "remote"))
    tier = TieredBackend(local, remote)

    remote.put_text("gp", "warm", '{"x": 1}')
    assert tier.get_text("gp", "warm") == '{"x": 1}'
    assert local.get_text("gp", "warm") == '{"x": 1}'  # written back

    tier.put_text("lg", "fresh", '{"y": 2}')
    assert local.get_text("lg", "fresh") == '{"y": 2}'
    assert remote.get_text("lg", "fresh") == '{"y": 2}'

    assert tier.has("gp", "warm") and not tier.has("gp", "absent")
    assert tier.get_text("gp", "absent") is None
    assert {(e.kind, e.key) for e in tier.entries()} == {
        ("gp", "warm"),
        ("lg", "fresh"),
    }


def test_backend_from_url_schemes(tmp_path):
    assert isinstance(backend_from_url(f"dir:{tmp_path}/a"), DirBackend)
    assert isinstance(backend_from_url(str(tmp_path / "b")), DirBackend)
    sqlite = backend_from_url(f"sqlite:{tmp_path}/c.db")
    assert isinstance(sqlite, SqliteBackend)
    sqlite.close()
    assert isinstance(backend_from_url("http://host:1"), RemoteHTTPBackend)
    assert isinstance(backend_from_url("https://host:1"), RemoteHTTPBackend)
    with pytest.raises(ValueError, match="unsupported store URL scheme"):
        backend_from_url("s3://bucket/prefix")
    # passthrough for already-built backends
    made = DirBackend(str(tmp_path / "d"))
    assert backend_from_url(made) is made


def test_resolve_store_tiers_http_over_cache_dir(tmp_path):
    memory = resolve_store(None, None)
    assert memory.backend is None and memory.describe() == "memory:"
    plain = resolve_store(None, str(tmp_path / "c"))
    assert isinstance(plain.backend, DirBackend)
    direct = resolve_store("http://host:1", None)
    assert isinstance(direct.backend, RemoteHTTPBackend)
    tiered = resolve_store("http://host:1", str(tmp_path / "c"))
    assert isinstance(tiered.backend, TieredBackend)
    assert isinstance(tiered.backend.local, DirBackend)
    assert isinstance(tiered.backend.remote, RemoteHTTPBackend)
    local_url = resolve_store(f"sqlite:{tmp_path}/x.db", str(tmp_path / "c"))
    assert isinstance(local_url.backend, SqliteBackend)  # no local tiering
    local_url.close()


def test_artifact_store_from_url_and_backend_exclusivity(tmp_path):
    store = ArtifactStore.from_url(f"dir:{tmp_path}/cache")
    put = store.put("gp", "k", {"x": (0.1 + 0.2)})
    assert ArtifactStore(str(tmp_path / "cache")).get("gp", "k") == put
    with pytest.raises(ValueError):
        ArtifactStore(root=str(tmp_path / "a"), backend=DirBackend(str(tmp_path / "b")))


def test_sync_stores_round_trip(tmp_path):
    source = DirBackend(str(tmp_path / "src"))
    source.put_text("gp", "a", '{"x": 1}')
    source.put_text("lg", "b", '{"y": 2}')

    first = sync_stores(source, f"sqlite:{tmp_path}/dst.db")
    assert (first.copied, first.skipped) == (2, 0)
    assert first.bytes_copied == len('{"x": 1}') + len('{"y": 2}')

    # Idempotent: a second pass copies nothing.
    again = sync_stores(source, f"sqlite:{tmp_path}/dst.db")
    assert (again.copied, again.skipped) == (0, 2)

    # Round trip back into an empty dir store: identical bytes.
    back = sync_stores(f"sqlite:{tmp_path}/dst.db", f"dir:{tmp_path}/back")
    assert back.copied == 2
    assert open(tmp_path / "back" / "gp" / "a.json").read() == '{"x": 1}'


def test_tiered_store_serves_sweep_artifacts(tmp_path):
    # TieredStore is the ArtifactStore face of TieredBackend: payloads
    # computed through it land in both layers and read back canonical.
    store = TieredStore(f"dir:{tmp_path}/local", f"dir:{tmp_path}/remote")
    put = store.put("fidelity", "k", {"samples": (0.25, 0.5)})
    assert put == {"samples": [0.25, 0.5]}
    fresh_local = ArtifactStore(str(tmp_path / "local"))
    fresh_remote = ArtifactStore(str(tmp_path / "remote"))
    assert fresh_local.get("fidelity", "k") == put
    assert fresh_remote.get("fidelity", "k") == put


def test_remote_backend_unreachable_raises(tmp_path):
    # Bind-then-close guarantees a dead port; a down server must raise
    # loudly, never masquerade as an empty cache.
    server = CacheServer(DirBackend(str(tmp_path / "cache")))
    url = server.url
    server.stop()
    client = RemoteHTTPBackend(url, timeout_s=2.0)
    with pytest.raises(StoreUnavailable):
        client.get_text("gp", "k")
