"""Seeded fault injection for the chaos suite (importable, not a test).

Two choreographies the fleet must survive, made deterministic:

* :class:`FlakyBackend` — wraps any
  :class:`~repro.orchestration.backends.StoreBackend` and raises
  :class:`~repro.orchestration.backends.StoreUnavailable` on a seeded
  fraction of operations (optionally after a seeded delay), emulating
  connection resets / timeouts / 5xx from a remote store.  Same seed →
  same failure sequence, so a chaos test that passes never flakes.

* :func:`spawn_chaos_worker` / ``_chaos_worker_main`` — run a real
  ``run_worker`` loop in a child *process* that SIGKILLs itself after a
  chosen number of completions **while still holding leases**, which is
  exactly the dead-worker scenario lease expiry exists for (a SIGKILL
  leaves no atexit, no finally, no drain — the coordinator only learns
  from the silence).
"""

from __future__ import annotations

import os
import random
import signal
import sys
import time

from repro.orchestration.backends import StoreBackend, StoreUnavailable


class FlakyBackend(StoreBackend):
    """A backend that fails a seeded fraction of calls.

    ``failure_rate`` is the per-operation probability of raising
    :class:`StoreUnavailable` (the transient failure every layer above
    must absorb); ``delay_s`` optionally sleeps before each *successful*
    operation to widen race windows.  ``fail_ops`` restricts injection
    to a subset of ``{"get", "put", "has", "entries", "delete"}``.
    ``injected`` counts the faults raised, so a test can assert the
    chaos actually happened.
    """

    def __init__(
        self,
        inner: StoreBackend,
        failure_rate: float = 0.3,
        seed: int = 0,
        fail_ops=("get", "put", "has", "entries", "delete"),
        delay_s: float = 0.0,
    ) -> None:
        if not 0.0 <= failure_rate <= 1.0:
            raise ValueError(f"failure_rate must be in [0, 1], got {failure_rate}")
        self.inner = inner
        self.failure_rate = failure_rate
        self.fail_ops = frozenset(fail_ops)
        self.delay_s = delay_s
        self.injected = 0
        self.calls = 0
        self._rng = random.Random(seed)

    def _maybe_fail(self, op: str) -> None:
        self.calls += 1
        if op in self.fail_ops and self._rng.random() < self.failure_rate:
            self.injected += 1
            raise StoreUnavailable(
                f"injected transient failure #{self.injected} on {op}"
            )
        if self.delay_s:
            time.sleep(self.delay_s)

    def get_text(self, kind, key):
        self._maybe_fail("get")
        return self.inner.get_text(kind, key)

    def put_text(self, kind, key, text):
        self._maybe_fail("put")
        self.inner.put_text(kind, key, text)

    def has(self, kind, key):
        self._maybe_fail("has")
        return self.inner.has(kind, key)

    def entries(self):
        self._maybe_fail("entries")
        return self.inner.entries()

    def delete(self, kind, key):
        self._maybe_fail("delete")
        return self.inner.delete(kind, key)

    def close(self):
        self.inner.close()

    def describe(self):
        return (
            f"flaky({self.inner.describe()}, "
            f"rate={self.failure_rate:g}, injected={self.injected})"
        )


def _chaos_worker_main(argv) -> int:
    """Child-process entry point: a worker that dies mid-fleet.

    ``argv``: coordinator URL, worker id, batch size, kill-after count
    (-1 = run to completion), store failure rate, seed.  The worker
    leases real jobs from the coordinator and executes them against the
    coordinator's artifact endpoints wrapped in a :class:`FlakyBackend`;
    after ``kill_after`` completions it SIGKILLs itself **between**
    completions, i.e. while still holding any other leased jobs — no
    drain, no release, exactly like a machine losing power.
    """
    from repro.orchestration.backends import RemoteHTTPBackend, RetryPolicy
    from repro.orchestration.store import ArtifactStore
    from repro.orchestration.worker import run_worker

    url, worker_id, batch, kill_after, rate, seed = (
        argv[0], argv[1], int(argv[2]), int(argv[3]), float(argv[4]),
        int(argv[5]),
    )
    backend = FlakyBackend(
        RemoteHTTPBackend(url, retry=RetryPolicy(attempts=1)),
        failure_rate=rate,
        seed=seed,
    )
    store = ArtifactStore(backend=backend)
    finished = {"count": 0}

    def progress(event, job):
        if event in ("computed", "cached"):
            finished["count"] += 1
            if kill_after >= 0 and finished["count"] >= kill_after:
                os.kill(os.getpid(), signal.SIGKILL)

    stats = run_worker(
        url,
        store,
        worker_id=worker_id,
        batch_size=batch,
        poll_s=0.05,
        # Fast, deterministic absorption of the injected faults: the
        # budget outlasts any seeded failure streak, with no real sleep.
        store_retry=RetryPolicy(attempts=30, base_delay_s=0.0, max_delay_s=0.0),
        progress=progress,
    )
    return 0 if stats.failed == 0 else 1


def spawn_chaos_worker(
    url: str,
    worker_id: str,
    batch_size: int = 1,
    kill_after: int = -1,
    failure_rate: float = 0.0,
    seed: int = 0,
):
    """Start ``_chaos_worker_main`` in a real child process.

    Returns the :class:`subprocess.Popen`; the caller waits or inspects
    ``returncode`` (``-SIGKILL`` for a self-killed worker).
    """
    import subprocess

    return subprocess.Popen(
        [
            sys.executable,
            os.path.abspath(__file__),
            url,
            worker_id,
            str(batch_size),
            str(kill_after),
            str(failure_rate),
            str(seed),
        ],
        env={**os.environ, "PYTHONPATH": _src_path()},
    )


def _src_path() -> str:
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


if __name__ == "__main__":
    sys.exit(_chaos_worker_main(sys.argv[1:]))
