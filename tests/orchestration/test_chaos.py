"""Chaos acceptance: a fleet survives a SIGKILLed worker + a flaky store.

The choreography (see ISSUE acceptance criteria):

1. A coordinator-backed cache server holds a 9-job sweep DAG.
2. Worker ``killer`` leases all three ready roots in one batch, completes
   exactly one, then SIGKILLs itself while still holding the other two
   leases — no drain, no release, like a machine losing power.
3. Worker ``survivor`` — whose every store call goes through a seeded
   30%-flaky backend — picks up the orphaned jobs after lease expiry and
   finishes the sweep.
4. The merged fleet manifest must show zero lost jobs, the expired
   leases in its failure ledger, and a ``results.jsonl`` payload
   bit-identical to a serial uncached run.

Both workers are real child processes (``fault_injection`` is the
``__main__``), so the SIGKILL is a genuine process death: the
coordinator only learns about it from the silence.
"""

import signal

import pytest
from fault_injection import spawn_chaos_worker

from repro.core.config import QGDPConfig
from repro.orchestration import (
    CacheServer,
    FleetClient,
    FleetCoordinator,
    SqliteBackend,
    SweepSpec,
    config_to_dict,
    plan_sweep,
    run_fleet_sweep,
    run_sweep,
    serialize_graph,
)

_CFG = config_to_dict(QGDPConfig(gp_iterations=40))


def _spec():
    return SweepSpec(
        topologies=("grid",),
        benchmarks=("bv-4",),
        engines=("qgdp", "tetris"),
        num_seeds=2,
        config=_CFG,
    )


@pytest.mark.chaos
def test_fleet_survives_sigkill_and_flaky_store(tmp_path):
    spec = _spec()
    plan = plan_sweep(spec)

    coordinator = FleetCoordinator(lease_ttl_s=2.0, max_attempts=3)
    backend = SqliteBackend(str(tmp_path / "store.db"))
    server = CacheServer(backend, coordinator=coordinator).start()
    killer = survivor = None
    try:
        FleetClient(server.url).enqueue(serialize_graph(plan.graph))

        # Phase 1: the killer leases every ready root (batch of 3),
        # completes one, and SIGKILLs itself holding the other two.
        # Waiting for the corpse keeps the choreography deterministic.
        killer = spawn_chaos_worker(
            server.url, "killer", batch_size=3, kill_after=1,
            failure_rate=0.3, seed=11,
        )
        killer.wait(timeout=300)
        assert killer.returncode == -signal.SIGKILL

        # Phase 2: a flaky-but-persistent survivor finishes the sweep
        # (the orphaned leases expire after 2 s and are re-granted).
        survivor = spawn_chaos_worker(
            server.url, "survivor", batch_size=2, kill_after=-1,
            failure_rate=0.3, seed=23,
        )
        result = run_fleet_sweep(spec, server.url, poll_s=0.1)
        survivor.wait(timeout=300)
        assert survivor.returncode == 0
    finally:
        for proc in (killer, survivor):
            if proc is not None and proc.poll() is None:
                proc.kill()
        server.stop()
        backend.close()

    # Zero lost jobs: every planned job shows up done, in plan order.
    plan_keys = [j.key for j in plan.graph.ordered()]
    assert [e["key"] for e in result.stats.entries] == plan_keys
    assert all(
        e["status"] in ("computed", "cached") for e in result.stats.entries
    )

    # The killer's orphaned leases are on the record in the merged
    # manifest's failure ledger — visible evidence chaos happened.
    failures = result.manifest["jobs"]["failures"]
    expired = [f for f in failures if f["error_type"] == "LeaseExpired"]
    assert {f["worker"] for f in expired} == {"killer"}
    assert len(expired) == 2
    assert set(result.manifest["fleet"]["workers"]) >= {"killer", "survivor"}

    # Bit-identical to a serial, uncached, fault-free run.
    serial = run_sweep(spec, workers=0)
    assert result.rows == serial.rows
