"""Acceptance: the orchestrated sweep is bit-identical and truly resumable.

* A ``repro sweep``-style run (parallel workers, disk artifact cache)
  must produce **bit-identical** :class:`FidelityCell` means and samples
  to the serial ``evaluate_fidelity`` path — floating point equality, not
  approximate.
* A second ``--resume`` invocation of the same sweep must complete with
  **zero recomputed stage jobs**, verified through the cache-hit counters
  that end up in the run manifest.
* Shards partition the cells deterministically and their union equals
  the unsharded sweep.
"""

import pytest

from repro.core.config import QGDPConfig
from repro.evaluation import EvaluationConfig, evaluate_fidelity, sweep_spec
from repro.orchestration import run_sweep

TOPOLOGIES = ["grid"]
BENCHMARKS = ["bv-4", "qaoa-4"]
ENGINES = ["qgdp", "tetris"]


@pytest.fixture(scope="module")
def eval_config():
    return EvaluationConfig(num_seeds=3, config=QGDPConfig(gp_iterations=60))


@pytest.fixture(scope="module")
def spec(eval_config):
    return sweep_spec(TOPOLOGIES, BENCHMARKS, ENGINES, eval_config)


@pytest.fixture(scope="module")
def serial_cells(eval_config):
    return evaluate_fidelity(TOPOLOGIES, BENCHMARKS, ENGINES, eval_config)


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return str(tmp_path_factory.mktemp("repro_cache"))


@pytest.fixture(scope="module")
def parallel_result(spec, cache_dir):
    return run_sweep(spec, cache_dir=cache_dir, workers=3)


def test_parallel_cached_sweep_is_bit_identical(serial_cells, parallel_result):
    assert set(parallel_result.cells) == set(serial_cells)
    for cell_id, cell in parallel_result.cells.items():
        serial = serial_cells[cell_id]
        assert cell["samples"] == serial.samples  # bit-equal, not approx
        assert cell["mean"] == serial.mean
        assert cell["minimum"] == serial.minimum
        assert cell["maximum"] == serial.maximum


def test_resume_recomputes_nothing(spec, cache_dir, parallel_result):
    resumed = run_sweep(spec, cache_dir=cache_dir, workers=3, resume=True)
    assert resumed.manifest["jobs"]["computed"] == 0
    assert resumed.manifest["jobs"]["cached"] == resumed.manifest["jobs"]["total"]
    assert resumed.manifest["jobs"]["total"] > 0
    assert resumed.cells == parallel_result.cells


def test_serial_resume_also_hits_cache(spec, cache_dir, parallel_result):
    resumed = run_sweep(spec, cache_dir=cache_dir, workers=1, resume=True)
    assert resumed.stats.computed == 0
    assert resumed.cells == parallel_result.cells


def test_shards_partition_and_union_to_full(spec, cache_dir, parallel_result):
    one = run_sweep(spec, cache_dir=cache_dir, resume=True, shard=(1, 2))
    two = run_sweep(spec, cache_dir=cache_dir, resume=True, shard=(2, 2))
    assert set(one.cells).isdisjoint(two.cells)
    merged = {**one.cells, **two.cells}
    assert merged == parallel_result.cells
    # Shards resumed from the shared cache recompute nothing.
    assert one.stats.computed == 0 and two.stats.computed == 0


def test_shard_validation(spec):
    with pytest.raises(ValueError):
        run_sweep(spec, shard=(0, 2))
    with pytest.raises(ValueError):
        run_sweep(spec, shard=(3, 2))


def test_manifest_records_spec_and_run_id(parallel_result, spec):
    manifest = parallel_result.manifest
    assert manifest["run_id"] == spec.spec_hash[:12]
    assert manifest["spec"]["topologies"] == list(TOPOLOGIES)
    assert manifest["spec"]["num_seeds"] == 3
    assert manifest["num_cells"] == len(parallel_result.cells)
    by_kind = manifest["jobs"]["by_kind"]
    assert set(by_kind) == {"gp", "lg", "transpile", "analyze", "fidelity"}
    # Analysis is shared per (topology, engine), not recomputed per cell.
    assert by_kind["analyze"]["computed"] == len(TOPOLOGIES) * len(ENGINES)


def test_detailed_sweep_matches_serial_harness(cache_dir):
    eval_config = EvaluationConfig(
        num_seeds=2, detailed=True, config=QGDPConfig(gp_iterations=60)
    )
    serial = evaluate_fidelity(["grid"], ["bv-4"], ["qgdp"], eval_config)
    spec = sweep_spec(["grid"], ["bv-4"], ["qgdp"], eval_config)
    swept = run_sweep(spec, cache_dir=cache_dir, workers=2)
    assert "dp" in swept.manifest["jobs"]["by_kind"]
    cell = swept.cells[("grid", "bv-4", "qgdp")]
    assert cell["samples"] == serial[("grid", "bv-4", "qgdp")].samples
    assert cell["mean"] == serial[("grid", "bv-4", "qgdp")].mean


def test_oversized_benchmarks_are_not_planned(eval_config):
    # qgan-9 needs 9 qubits and fits grid(25); a 100-qubit ask would not.
    spec = sweep_spec(["grid"], ["bv-16"], ["qgdp"], eval_config)
    result = run_sweep(spec)
    assert ("grid", "bv-16", "qgdp") in result.cells  # 16 fits the 25-qubit grid
