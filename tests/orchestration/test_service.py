"""Acceptance suite for placement-as-a-service (``repro serve``).

The headline guarantees are pinned against a *live* service on an
ephemeral port: two authenticated tenants submitting overlapping
sweeps concurrently get results bit-identical to serial
:func:`~repro.orchestration.sweep.run_sweep` runs while the overlap is
computed exactly once fleet-wide (the per-run manifests' ``computed``
counters sum to the size of the job-key union); every endpoint rejects
missing/wrong/expired tokens with an opaque 401; cancellation
withdraws only jobs no other tenant needs; and a warm-cache resume
check over N artifacts costs ``ceil(N / batch_size)`` HTTP round trips
through the batched artifact endpoints.
"""

import json
import math
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.config import QGDPConfig
from repro.orchestration import (
    ArtifactStore,
    RemoteHTTPBackend,
    config_to_dict,
    plan_sweep,
    read_jsonl,
    run_sweep,
)
from repro.orchestration.service import (
    JobService,
    ServiceClient,
    ServiceError,
    ServiceToken,
    spec_from_document,
)

_CFG = config_to_dict(QGDPConfig(gp_iterations=40))

ALICE = ServiceToken("alice-secret", tenant="alice")
BOB = ServiceToken("bob-secret", tenant="bob")


def _spec_doc(engines=("qgdp",), num_seeds=2):
    return {
        "topologies": ["grid"],
        "benchmarks": ["bv-4"],
        "engines": list(engines),
        "num_seeds": num_seeds,
        "config": _CFG,
    }


def _plan_keys(doc):
    """The content-addressed job keys a submission plans to."""
    plan = plan_sweep(spec_from_document(doc))
    return {job.key for job in plan.graph.ordered()}


@pytest.fixture()
def service(tmp_path):
    """A fresh service (cold store) with an executing worker pool."""
    with JobService(
        f"dir:{tmp_path / 'cache'}",
        [ALICE, BOB],
        workers=2,
        runs_root=str(tmp_path / "runs"),
        poll_s=0.02,
    ) as svc:
        yield svc


@pytest.fixture(scope="module")
def shared_service(tmp_path_factory):
    """One service shared across the cheaper tests (warm-store reuse)."""
    root = tmp_path_factory.mktemp("service")
    with JobService(
        f"dir:{root / 'cache'}",
        [ALICE, BOB],
        workers=2,
        runs_root=str(root / "runs"),
        poll_s=0.02,
    ) as svc:
        yield svc


@pytest.fixture()
def frozen_service(tmp_path):
    """A service front door with no workers: nothing ever executes, so
    queue-state assertions (auth, cancel, fairness) are deterministic."""
    with JobService(
        f"dir:{tmp_path / 'cache'}", [ALICE, BOB], workers=0
    ) as svc:
        yield svc


# -- the headline acceptance test --------------------------------------------


def test_two_tenants_share_overlap_and_match_serial(service):
    doc_a = _spec_doc(engines=("qgdp", "tetris"))
    doc_b = _spec_doc(engines=("qgdp", "abacus"))
    keys_a, keys_b = _plan_keys(doc_a), _plan_keys(doc_b)
    assert keys_a & keys_b, "the two specs must actually overlap"
    alice = ServiceClient(service.url, ALICE.secret)
    bob = ServiceClient(service.url, BOB.secret)

    receipts = {}

    def submit(name, client, doc):
        receipts[name] = client.submit(doc)

    threads = [
        threading.Thread(target=submit, args=("a", alice, doc_a)),
        threading.Thread(target=submit, args=("b", bob, doc_b)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    # Enqueue is atomic per submission, so whatever the interleaving,
    # the two receipts account for the overlap exactly once.
    assert receipts["a"]["num_jobs"] == len(keys_a)
    assert receipts["b"]["num_jobs"] == len(keys_b)
    assert (
        receipts["a"]["shared_jobs"] + receipts["b"]["shared_jobs"]
        == len(keys_a & keys_b)
    )

    run_a, run_b = receipts["a"]["run_id"], receipts["b"]["run_id"]
    status_a = alice.wait(run_a, poll_s=0.05, timeout_s=300)
    status_b = bob.wait(run_b, poll_s=0.05, timeout_s=300)
    assert status_a["state"] == "done"
    assert status_b["state"] == "done"
    assert status_a["tenant"] == "alice"
    assert status_b["tenant"] == "bob"

    # Zero duplicate work: each union job was computed in exactly one
    # tenant's manifest and shows up as cached in the other's.
    manifest_a = alice.manifest(run_a)
    manifest_b = bob.manifest(run_b)
    assert manifest_a["jobs"]["total"] == len(keys_a)
    assert manifest_b["jobs"]["total"] == len(keys_b)
    assert (
        manifest_a["jobs"]["computed"] + manifest_b["jobs"]["computed"]
        == len(keys_a | keys_b)
    )
    for manifest in (manifest_a, manifest_b):
        assert (
            manifest["jobs"]["computed"] + manifest["jobs"]["cached"]
            == manifest["jobs"]["total"]
        )
        assert manifest["service"]["scheduler"] == "fair-round-robin"
    assert manifest_a["service"]["tenant"] == "alice"

    # Bit-identical to a serial, uncached run_sweep of the same specs.
    serial_a = run_sweep(spec_from_document(doc_a))
    serial_b = run_sweep(spec_from_document(doc_b))
    rows_a = alice.results(run_a)["rows"]
    rows_b = bob.results(run_b)["rows"]
    assert json.dumps(rows_a) == json.dumps(serial_a.rows)
    assert json.dumps(rows_b) == json.dumps(serial_b.rows)

    # A third, identical submission is pure cache: nothing recomputed.
    rerun = alice.submit(doc_a)
    assert rerun["shared_jobs"] == len(keys_a)
    alice.wait(rerun["run_id"], poll_s=0.05, timeout_s=60)
    manifest_rerun = alice.manifest(rerun["run_id"])
    assert manifest_rerun["jobs"]["computed"] == 0
    assert manifest_rerun["jobs"]["cached"] == len(keys_a)
    assert (
        json.dumps(alice.results(rerun["run_id"])["rows"])
        == json.dumps(serial_a.rows)
    )


# -- streaming, persistence, submissions --------------------------------------


def test_incremental_results_cursor(shared_service):
    client = ServiceClient(shared_service.url, ALICE.secret)
    receipt = client.submit(_spec_doc())
    run_id = receipt["run_id"]
    assert receipt["num_cells"] == 1
    status = client.wait(run_id, poll_s=0.05, timeout_s=300)
    assert status["state"] == "done"
    assert status["cells_done"] == status["num_cells"] == 1

    first = client.results(run_id)
    assert first["complete"] is True
    assert first["next"] == len(first["rows"]) == 1
    assert first["rows"][0]["engine"] == "qgdp"
    # Resuming from the cursor yields nothing new, same cursor back.
    resumed = client.results(run_id, after=first["next"])
    assert resumed["rows"] == []
    assert resumed["next"] == first["next"]
    assert resumed["complete"] is True

    with pytest.raises(ServiceError) as info:
        client.results("run9999-deadbeef")
    assert "404" in str(info.value)


def test_flow_shorthand_submission(shared_service):
    client = ServiceClient(shared_service.url, BOB.secret)
    receipt = client.submit(
        {
            "topology": "grid",
            "benchmark": "bv-4",
            "engine": "qgdp",
            "num_seeds": 1,
            "config": _CFG,
        }
    )
    status = client.wait(receipt["run_id"], poll_s=0.05, timeout_s=300)
    assert status["state"] == "done"
    rows = client.results(receipt["run_id"])["rows"]
    assert len(rows) == 1
    assert rows[0]["topology"] == "grid"
    assert rows[0]["num_samples"] == 1


def test_completed_run_is_persisted_for_diff(shared_service):
    client = ServiceClient(shared_service.url, ALICE.secret)
    receipt = client.submit(_spec_doc())
    run_id = receipt["run_id"]
    client.wait(run_id, poll_s=0.05, timeout_s=300)
    run_dir = f"{shared_service.runs_root}/{run_id}"
    rows = read_jsonl(f"{run_dir}/results.jsonl")
    assert json.dumps(rows) == json.dumps(client.results(run_id)["rows"])
    with open(f"{run_dir}/manifest.json", "r", encoding="utf-8") as fh:
        manifest = json.load(fh)
    assert manifest["run_id"] == run_id
    assert manifest["jobs"]["total"] == receipt["num_jobs"]
    # The ledger rows repro diff consumes are present and plan-ordered.
    assert len(manifest["jobs"]["entries"]) == receipt["num_jobs"]
    assert {e["status"] for e in manifest["jobs"]["entries"]} <= {
        "computed",
        "cached",
    }


def test_submit_rejections(shared_service):
    client = ServiceClient(shared_service.url, ALICE.secret)
    for document in (
        {**_spec_doc(), "frobnicate": 1},  # unknown spec field
        {"topologies": ["grid"], "benchmarks": ["bv-4"]},  # no engines
        {"topology": "grid", "engine": "qgdp"},  # flow missing benchmark
        {"topology": "grid", "benchmark": "bv-4", "engine": "qgdp",
         "engines": ["qgdp"]},  # flow/spec field mix
    ):
        with pytest.raises(ServiceError) as info:
            client.submit(document)
        assert "HTTP 400" in str(info.value)


def test_spec_from_document_unit():
    doc = _spec_doc(engines=("qgdp", "tetris"))
    spec = spec_from_document(doc)
    assert spec.engines == ("qgdp", "tetris")
    assert spec.num_seeds == 2
    flow = spec_from_document(
        {"topology": "grid", "benchmark": "bv-4", "engine": "qgdp"}
    )
    assert flow.topologies == ("grid",)
    assert flow.spec_hash  # hashable (run-id material)
    with pytest.raises(ValueError):
        spec_from_document([1, 2, 3])
    with pytest.raises(ValueError):
        spec_from_document({"topologys": ["grid"]})


# -- authentication ------------------------------------------------------------


def _raw(url, method="GET", token=None, body=None):
    request = urllib.request.Request(url, data=body, method=method)
    if token is not None:
        request.add_header("Authorization", f"Bearer {token}")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def test_every_endpoint_rejects_bad_tokens(frozen_service):
    base = frozen_service.url
    endpoints = [
        ("GET", "/v1/ping", None),
        ("GET", "/v1/list", None),
        ("GET", "/v1/run/run0001-deadbeef", None),
        ("GET", "/v1/run/run0001-deadbeef/results", None),
        ("GET", "/v1/run/run0001-deadbeef/manifest", None),
        ("POST", "/v1/run", b"{}"),
        ("DELETE", "/v1/run/run0001-deadbeef", None),
        ("GET", "/v1/artifact/gp/abc123", None),
        ("PUT", "/v1/artifact/gp/abc123", b"{}"),
        ("POST", "/v1/artifacts/head", b'{"items": []}'),
        ("POST", "/v1/artifacts/get", b'{"items": []}'),
        ("POST", "/v1/fleet/status", b"{}"),
    ]
    bad_tokens = [None, "", "wrong-secret", ALICE.secret + "x", "Basic zzz"]
    for method, path, body in endpoints:
        for token in bad_tokens:
            status, payload = _raw(
                f"{base}{path}", method=method, token=token, body=body
            )
            assert status == 401, (method, path, token)
            # The rejection body is opaque: no path echo, no hint
            # whether the token was missing, wrong or expired.
            assert payload == b'{"error": "unauthorized"}', (method, path)
    status, payload = _raw(f"{base}/v1/ping", token=ALICE.secret)
    assert status == 200  # the routes themselves work when authorized
    # HEAD can't carry a body, but it still authenticates.
    status, _ = _raw(f"{base}/v1/artifact/gp/abc123", method="HEAD")
    assert status == 401


def test_expired_token_stops_authenticating(tmp_path):
    class Clock:
        now = 0.0

        def __call__(self):
            return self.now

    clock = Clock()
    with JobService(
        f"dir:{tmp_path / 'cache'}",
        [
            ServiceToken("ephemeral", tenant="alice", expires_s=100.0),
            ServiceToken("forever", tenant="bob"),
        ],
        workers=0,
        clock=clock,
    ) as svc:
        short = ServiceClient(svc.url, "ephemeral")
        assert short.ping()  # live before the expiry
        clock.now = 200.0
        with pytest.raises(ServiceError) as info:
            short.ping()
        assert "401" in str(info.value)
        assert ServiceClient(svc.url, "forever").ping()  # unaffected


def test_token_normalization_and_validation(tmp_path):
    store_url = f"dir:{tmp_path / 'cache'}"
    with pytest.raises(ValueError):
        JobService(store_url, [])  # never unauthenticated
    with pytest.raises(ValueError):
        JobService(store_url, ["t"], workers=-1)
    with pytest.raises(ValueError):
        JobService(ArtifactStore(), ["t"])  # memory-only store
    with JobService(store_url, ["s1", "s2"], workers=0) as svc:
        assert svc.authenticate("s1") == "tenant1"
        assert svc.authenticate("s2") == "tenant2"
        assert svc.authenticate("s3") is None


# -- cancellation --------------------------------------------------------------


def test_cancel_withdraws_only_exclusive_jobs(frozen_service):
    doc_a = _spec_doc(engines=("qgdp", "tetris"))
    doc_b = _spec_doc(engines=("qgdp",))
    keys_a, keys_b = _plan_keys(doc_a), _plan_keys(doc_b)
    assert keys_b < keys_a  # B is a strict subset: pure overlap
    exclusive = keys_a - keys_b

    alice = ServiceClient(frozen_service.url, ALICE.secret)
    bob = ServiceClient(frozen_service.url, BOB.secret)
    run_a = alice.submit(doc_a)["run_id"]
    run_b = bob.submit(doc_b)["run_id"]

    reply = alice.cancel(run_a)
    assert reply["cancelled"] == len(exclusive)
    assert reply["skipped"] == 0  # no workers: nothing was leased
    assert reply["shared"] == len(keys_b)

    status_a = alice.status(run_a)
    assert status_a["state"] == "cancelled"
    assert status_a["counts"]["cancelled"] == len(exclusive)
    # The cancelled run's stream is terminal but never completes.
    results_a = alice.results(run_a)
    assert results_a["state"] == "cancelled"
    assert results_a["complete"] is False

    # Bob's overlapping run is untouched: every job still queued.
    status_b = bob.status(run_b)
    assert status_b["state"] == "queued"
    assert status_b["counts"]["cancelled"] == 0

    # Idempotent; unknown runs 404.
    assert alice.cancel(run_a)["already_cancelled"] is True
    with pytest.raises(ServiceError) as info:
        alice.cancel("run9999-deadbeef")
    assert "404" in str(info.value)

    # Resubmitting the cancelled spec resurrects the withdrawn jobs.
    rerun = alice.submit(doc_a)
    assert rerun["resurrected_jobs"] == len(exclusive)
    assert rerun["shared_jobs"] == len(keys_b)
    status = alice.status(rerun["run_id"])
    assert status["state"] == "queued"
    assert status["counts"]["cancelled"] == 0


# -- the batched warm-cache resume criterion ----------------------------------


def test_warm_cache_resume_batches_round_trips(shared_service):
    client = ServiceClient(shared_service.url, ALICE.secret)
    doc = _spec_doc(engines=("qgdp", "tetris"))
    receipt = client.submit(doc)
    client.wait(receipt["run_id"], poll_s=0.05, timeout_s=300)

    plan = plan_sweep(spec_from_document(doc))
    pairs = [(job.kind, job.key) for job in plan.graph.ordered()]
    batch_size = 4
    remote = RemoteHTTPBackend(
        shared_service.url, batch_size=batch_size, token=ALICE.secret
    )
    store = ArtifactStore(backend=remote)
    warmed = store.prefetch(pairs)
    # Every artifact is on the service (the run just computed them) and
    # the whole warm-cache resume check cost ceil(N / batch) requests
    # instead of N — the round-trip reduction the issue pins.
    assert all(payload is not None for payload in warmed.values())
    assert len(pairs) > batch_size  # the reduction is non-trivial
    assert remote.requests == math.ceil(len(pairs) / batch_size)
    assert remote.batch_fallbacks == 0
    # After the prefetch, reads are pure memory hits: no new requests.
    before = remote.requests
    for kind, key in pairs:
        assert store.get(kind, key) is not None
    assert remote.requests == before


# -- the CLI front ends --------------------------------------------------------


def test_cli_submit_status_results_cancel(shared_service, tmp_path, capsys):
    from repro.cli import main

    spec_path = tmp_path / "spec.json"
    spec_path.write_text(json.dumps(_spec_doc()), encoding="utf-8")
    base = [
        "--service", shared_service.url, "--token", ALICE.secret,
    ]

    rc = main(
        ["submit", *base, "--spec", str(spec_path), "--wait",
         "--poll-s", "0.05"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    run_id = out.split()[1].rstrip(":")
    assert run_id.startswith("run")
    assert "done" in out

    rc = main(["status", run_id, *base])
    out = capsys.readouterr().out
    assert rc == 0
    status = json.loads(out)
    assert status["state"] == "done"
    assert status["computed"] + status["cached"] == status["counts"]["total"]

    rc = main(["results", run_id, *base])
    captured = capsys.readouterr()
    assert rc == 0
    rows = [json.loads(line) for line in captured.out.splitlines()]
    assert rows == ServiceClient(
        shared_service.url, ALICE.secret
    ).results(run_id)["rows"]
    assert "complete=True" in captured.err

    rc = main(["cancel", run_id, *base])
    assert rc == 0
    capsys.readouterr()

    # A bad token is an error exit, not a traceback.
    rc = main(
        ["status", run_id, "--service", shared_service.url,
         "--token", "wrong"]
    )
    captured = capsys.readouterr()
    assert rc == 1
    assert "401" in captured.err
