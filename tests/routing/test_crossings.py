"""Crossing counting on synthetic layouts."""

from repro.geometry import SiteGrid
from repro.legalization import BinGrid
from repro.netlist import QuantumNetlist, Qubit, Resonator, WireBlock
from repro.routing import count_crossings


def _netlist(qubit_specs, resonator_specs, cols=20, rows=12):
    nl = QuantumNetlist()
    for index, x, y in qubit_specs:
        nl.add_qubit(Qubit(index=index, w=3, h=3, x=x, y=y))
    bins = BinGrid(SiteGrid(cols, rows))
    for q in nl.qubits:
        bins.occupy_rect(q.rect, q.node_id)
    for (qi, qj), sites in resonator_specs:
        r = nl.add_resonator(
            Resonator(qi=qi, qj=qj, wirelength=max(1.0, float(len(sites))))
        )
        r.blocks = [
            WireBlock(resonator_key=r.key, ordinal=k, x=c + 0.5, y=w + 0.5)
            for k, (c, w) in enumerate(sites)
        ]
        for block in r.blocks:
            bins.occupy(*bins.grid.site_of(block.center), block.node_id)
    return (nl, bins)


def test_unified_in_channel_resonator_has_no_crossings():
    nl, bins = _netlist(
        [(0, 1.5, 1.5), (1, 13.5, 1.5)],
        [((0, 1), [(c, 1) for c in range(3, 12)])],
    )
    report = count_crossings(nl, bins)
    assert report.total == 0


def test_split_resonator_bridges_interposed_blocks():
    # Resonator (0,1) split around resonator (2,3)'s blocks in its channel.
    nl, bins = _netlist(
        [(0, 1.5, 1.5), (1, 17.5, 1.5), (2, 1.5, 9.5), (3, 17.5, 9.5)],
        [
            ((0, 1), [(3, 1), (4, 1), (14, 1), (15, 1)]),
            ((2, 3), [(c, 1) for c in range(7, 12)]),  # squatting the channel
        ],
    )
    report = count_crossings(nl, bins)
    assert report.total >= 1
    assert len(report.bridged_blocks[(0, 1)]) >= 1


def test_bridged_blocks_count_distinct_foreign_blocks():
    nl, bins = _netlist(
        [(0, 1.5, 1.5), (1, 17.5, 1.5), (2, 1.5, 9.5), (3, 17.5, 9.5)],
        [
            ((0, 1), [(3, 1), (15, 1)]),
            ((2, 3), [(c, 1) for c in range(5, 14)]),
        ],
    )
    report = count_crossings(nl, bins)
    bridged = report.bridged_blocks[(0, 1)]
    assert all(owner[1] == (2, 3) for owner in bridged)
    assert len(bridged) == len(set(bridged))


def test_crossing_traces_intersecting_in_free_space():
    # Two diagonal resonators whose chords cross in empty space.
    nl, bins = _netlist(
        [
            (0, 1.5, 1.5),
            (1, 17.5, 9.5),
            (2, 1.5, 9.5),
            (3, 17.5, 1.5),
        ],
        [
            ((0, 1), [(4, 3), (14, 8)]),  # split: chord crosses the die
            ((2, 3), [(4, 8), (14, 3)]),  # split the other way
        ],
    )
    report = count_crossings(nl, bins)
    assert sum(report.pair_crossings.values()) >= 1


def test_per_resonator_attribution():
    nl, bins = _netlist(
        [(0, 1.5, 1.5), (1, 17.5, 1.5), (2, 1.5, 9.5), (3, 17.5, 9.5)],
        [
            ((0, 1), [(3, 1), (15, 1)]),
            ((2, 3), [(c, 1) for c in range(5, 14)]),
        ],
    )
    report = count_crossings(nl, bins)
    assert report.per_resonator[(0, 1)] >= 1
    assert set(report.per_resonator) == {(0, 1), (2, 3)}
