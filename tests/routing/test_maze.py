"""Maze router: path validity, cost model, windows."""

import pytest

from repro.geometry import Rect, SiteGrid
from repro.legalization import BinGrid
from repro.routing import MazeRouter


@pytest.fixture()
def bins():
    return BinGrid(SiteGrid(cols=10, rows=10))


def _route(bins, sources, targets, own_key=(0, 1), **kwargs):
    return MazeRouter(bins).route(set(sources), set(targets), own_key, **kwargs)


def test_straight_route(bins):
    result = _route(bins, [(0, 5)], [(9, 5)])
    assert result is not None
    assert result.path[0] == (0, 5)
    assert result.path[-1] == (9, 5)
    assert result.cost == pytest.approx(9.0)


def test_path_steps_are_adjacent(bins):
    result = _route(bins, [(0, 0)], [(9, 9)])
    for a, b in zip(result.path, result.path[1:]):
        assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1


def test_qubits_are_impassable(bins):
    # Wall of qubit sites across the grid.
    for row in range(10):
        bins.occupy(5, row, ("q", 0))
    assert _route(bins, [(0, 5)], [(9, 5)]) is None


def test_route_around_partial_wall(bins):
    for row in range(9):
        bins.occupy(5, row, ("q", 0))
    result = _route(bins, [(0, 5)], [(9, 5)])
    assert result is not None
    assert (5, 9) in result.path  # squeezes through the opening


def test_foreign_blocks_cost_crossings(bins):
    for row in range(10):
        bins.occupy(5, row, ("b", (2, 3), row))
    result = _route(bins, [(0, 5)], [(9, 5)])
    assert result is not None
    assert result.num_crossings == 1
    assert result.crossings[0][1] == (2, 3)


def test_router_prefers_detour_over_crossing(bins):
    for row in range(1, 10):
        bins.occupy(5, row, ("b", (2, 3), row))  # gap at row 0
    result = _route(bins, [(0, 5)], [(9, 5)])
    assert result.num_crossings == 0
    assert (5, 0) in result.path


def test_own_blocks_are_free(bins):
    for col in range(1, 9):
        bins.occupy(col, 5, ("b", (0, 1), col))
    result = _route(bins, [(0, 5)], [(9, 5)], own_key=(0, 1))
    assert result.cost < 9.0  # rides its own blocks at zero cost
    assert result.num_crossings == 0


def test_window_restricts_search(bins):
    # Only corridor row 5 allowed; block it -> no route.
    for row in range(10):
        if row != 5:
            continue
    bins.occupy(5, 5, ("q", 0))
    result = _route(
        bins, [(0, 5)], [(9, 5)], window=(0, 5, 9, 5)
    )
    assert result is None  # cannot leave the single-row window


def test_extra_cost_steers_route(bins):
    def penalty(site):
        return 50.0 if site[1] == 5 and site[0] not in (0, 9) else 0.0

    result = _route(bins, [(0, 5)], [(9, 5)], extra_cost=penalty)
    middle = [s for s in result.path if 0 < s[0] < 9]
    assert all(s[1] != 5 for s in middle)


def test_empty_terminals_return_none(bins):
    assert _route(bins, [], [(1, 1)]) is None
    assert _route(bins, [(0, 0)], []) is None


def test_crossing_cost_must_exceed_step():
    bins = BinGrid(SiteGrid(4, 4))
    with pytest.raises(ValueError):
        MazeRouter(bins, step_cost=2.0, crossing_cost=1.0)


def test_source_equals_target(bins):
    result = _route(bins, [(3, 3)], [(3, 3)])
    assert result.path == [(3, 3)]
    assert result.cost == 0.0
