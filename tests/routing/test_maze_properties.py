"""Property tests: the maze router is a true shortest-path search."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import SiteGrid
from repro.legalization import BinGrid
from repro.routing import MazeRouter


def _reference_cost(bins, source, target, own_key, router):
    """Plain Dijkstra over the same cost model (independent implementation)."""
    grid = bins.grid
    dist = {source: 0.0}
    heap = [(0.0, source)]
    visited = set()
    while heap:
        d, site = heapq.heappop(heap)
        if site in visited:
            continue
        visited.add(site)
        if site == target:
            return d
        for nbr in grid.neighbors4(*site):
            if nbr in visited:
                continue
            if nbr == target:
                cost = router._site_cost(nbr, own_key)
                cost = router.step_cost if cost is None else cost
            else:
                cost = router._site_cost(nbr, own_key)
                if cost is None:
                    continue
            nd = d + cost
            if nbr not in dist or nd < dist[nbr]:
                dist[nbr] = nd
                heapq.heappush(heap, (nd, nbr))
    return None


@settings(max_examples=30, deadline=None)
@given(
    occupied=st.sets(
        st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=25
    ),
    foreign=st.sets(
        st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=25
    ),
    source=st.tuples(st.integers(0, 7), st.integers(0, 7)),
    target=st.tuples(st.integers(0, 7), st.integers(0, 7)),
)
def test_route_cost_matches_reference_dijkstra(occupied, foreign, source, target):
    bins = BinGrid(SiteGrid(8, 8))
    for site in sorted(occupied - {source, target}):
        bins.occupy(site[0], site[1], ("q", 0))
    for site in sorted(foreign - occupied - {source, target}):
        bins.occupy(site[0], site[1], ("b", (5, 6), 0))
    router = MazeRouter(bins)
    result = router.route({source}, {target}, own_key=(0, 1))
    expected = _reference_cost(bins, source, target, (0, 1), router)
    if expected is None:
        assert result is None
    else:
        assert result is not None
        assert abs(result.cost - expected) < 1e-9


@settings(max_examples=30, deadline=None)
@given(
    foreign=st.sets(
        st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=30
    ),
    source=st.tuples(st.integers(0, 7), st.integers(0, 7)),
    target=st.tuples(st.integers(0, 7), st.integers(0, 7)),
)
def test_route_crossings_match_path_owners(foreign, source, target):
    bins = BinGrid(SiteGrid(8, 8))
    for site in sorted(foreign - {source, target}):
        bins.occupy(site[0], site[1], ("b", (5, 6), 0))
    result = MazeRouter(bins).route({source}, {target}, own_key=(0, 1))
    assert result is not None  # no impassable sites in this instance
    recount = [
        bins.occupant(*site)
        for site in result.path
        if bins.occupant(*site) is not None
    ]
    assert result.crossings == recount
