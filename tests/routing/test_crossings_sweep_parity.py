"""Parity: the bbox sweep candidate index equals the all-pairs scan.

``_candidate_pairs`` replaced the historical O(R²) per-pair
``_bboxes_disjoint`` filter; the sweep must surface *exactly* the
non-disjoint pairs (touching boxes included, ``None`` boxes excluded),
and the full ``count_crossings`` / ``resonator_crossings`` results —
including dict iteration order, which the Eq. 7 fidelity product folds
over — must match a verbatim transcription of the old pair loop.

The batched orientation pass is pinned here too:
``proper_crossings_mask`` row-for-row against the scalar
``segments_intersect``, and ``_pair_intersection_counts`` pair-for-pair
against the scalar ``_trace_intersections`` loop it replaced in the
whole-layout scan.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import SiteGrid
from repro.geometry.segments import proper_crossings_mask, segments_intersect
from repro.legalization import BinGrid
from repro.netlist import QuantumNetlist, Qubit, Resonator, WireBlock
from repro.routing.crossings import (
    CrossingReport,
    _bboxes_disjoint,
    _bridged_blocks,
    _candidate_pairs,
    _pair_intersection_counts,
    _trace_intersections,
    build_traces,
    count_crossings,
    resonator_crossings,
    trace_bbox,
)

# -- candidate index vs. all-pairs filter ------------------------------------
coord = st.floats(-3.0, 12.0, allow_nan=False, allow_infinity=False)
# Snapping some coordinates to a coarse lattice makes touching/equal
# edges (the strict-inequality boundary of _bboxes_disjoint) common.
lattice = st.integers(-2, 10).map(float)
span = st.tuples(
    st.one_of(lattice, coord), st.one_of(lattice, coord)
).map(sorted)
bbox = st.one_of(
    st.none(),
    st.tuples(span, span).map(
        lambda xy: (xy[0][0], xy[1][0], xy[0][1], xy[1][1])
    ),
)


@settings(max_examples=200, deadline=None)
@given(boxes=st.lists(bbox, max_size=12))
def test_candidate_pairs_match_all_pairs_filter(boxes):
    bboxes = {(k, k + 1): box for k, box in enumerate(boxes)}
    keys = sorted(bboxes)
    want = [
        (key_a, key_b)
        for a_pos, key_a in enumerate(keys)
        for key_b in keys[a_pos + 1 :]
        if not _bboxes_disjoint(bboxes[key_a], bboxes[key_b])
    ]
    assert _candidate_pairs(keys, bboxes) == want


# -- full report vs. the historical pair loop --------------------------------
def reference_count_crossings(netlist, bins):
    """The original all-pairs ``count_crossings`` body, verbatim."""
    lb = bins.grid.lb
    report = CrossingReport()
    traces = build_traces(netlist, lb)
    keys = sorted(traces)
    bboxes = {key: trace_bbox(traces[key]) for key in keys}
    per_res = {key: 0 for key in keys}
    for key in keys:
        bridged = _bridged_blocks(traces[key], key, bins)
        report.bridged_blocks[key] = sorted(bridged)
        per_res[key] += len(bridged)
    for a_pos, key_a in enumerate(keys):
        for key_b in keys[a_pos + 1 :]:
            if _bboxes_disjoint(bboxes[key_a], bboxes[key_b]):
                continue
            count = _trace_intersections(traces[key_a], traces[key_b])
            if count:
                report.pair_crossings[(key_a, key_b)] = count
                per_res[key_a] += count
                per_res[key_b] += count
    report.per_resonator = per_res
    return report


COLS, ROWS = 20, 12
site_st = st.tuples(st.integers(0, COLS - 1), st.integers(3, ROWS - 1))


@st.composite
def layouts(draw):
    nl = QuantumNetlist()
    qubit_xs = (1.5, 7.5, 13.5, 18.5)
    for index, x in enumerate(qubit_xs):
        nl.add_qubit(Qubit(index=index, w=3, h=3, x=x, y=1.5))
    bins = BinGrid(SiteGrid(COLS, ROWS))
    for q in nl.qubits:
        bins.occupy_rect(q.rect, q.node_id)
    endpoints = draw(
        st.sets(
            st.tuples(st.integers(0, 3), st.integers(0, 3)).filter(
                lambda e: e[0] != e[1]
            ),
            min_size=1,
            max_size=5,
        )
    )
    taken = set()
    for qi, qj in sorted(endpoints):
        if nl.has_resonator(qi, qj):
            continue
        sites = [
            s
            for s in sorted(draw(st.sets(site_st, min_size=1, max_size=9)))
            if s not in taken
        ]
        if not sites:
            continue
        r = nl.add_resonator(
            Resonator(qi=qi, qj=qj, wirelength=float(len(sites)))
        )
        r.blocks = [
            WireBlock(
                resonator_key=r.key, ordinal=k, x=c + 0.5, y=w + 0.5
            )
            for k, (c, w) in enumerate(sites)
        ]
        for block in r.blocks:
            bins.occupy(*bins.grid.site_of(block.center), block.node_id)
            taken.update(
                bins.grid.site_of(block.center) for block in r.blocks
            )
    return (nl, bins)


@settings(max_examples=50, deadline=None)
@given(layout=layouts())
def test_count_crossings_matches_all_pairs_reference(layout):
    nl, bins = layout
    got = count_crossings(nl, bins)
    want = reference_count_crossings(nl, bins)
    assert got.per_resonator == want.per_resonator
    assert got.pair_crossings == want.pair_crossings
    assert got.bridged_blocks == want.bridged_blocks
    # Dict iteration order feeds the Eq. 7 product: it must match too.
    assert list(got.pair_crossings) == list(want.pair_crossings)
    assert list(got.per_resonator) == list(want.per_resonator)
    assert got.total == want.total


@settings(max_examples=30, deadline=None)
@given(layout=layouts())
def test_resonator_crossings_cached_paths_agree(layout):
    nl, bins = layout
    traces = build_traces(nl, bins.grid.lb)
    bboxes = {}
    for r in nl.resonators:
        bare = resonator_crossings(nl, r, bins)
        cached = resonator_crossings(
            nl, r, bins, traces=traces, bboxes=bboxes
        )
        assert bare == cached


# -- batched orientation tests vs. the scalar kernels ------------------------
point_st = st.tuples(
    st.one_of(
        st.integers(-3, 12).map(float),
        st.floats(-3.0, 12.0, allow_nan=False, allow_infinity=False),
    ),
    st.one_of(
        st.integers(-3, 12).map(float),
        st.floats(-3.0, 12.0, allow_nan=False, allow_infinity=False),
    ),
)
segment_st = st.tuples(point_st, point_st)


@settings(max_examples=200, deadline=None)
@given(rows=st.lists(st.tuples(segment_st, segment_st), max_size=20))
def test_crossings_mask_matches_scalar_kernel(rows):
    """Shared endpoints, collinear touching, proper crossings — all agree."""
    want = [
        segments_intersect(p1, p2, q1, q2)
        for (p1, p2), (q1, q2) in rows
    ]
    stack = lambda pts: np.array(pts, dtype=np.float64).reshape(len(rows), 2)
    got = proper_crossings_mask(
        stack([p1 for (p1, _), _ in rows]),
        stack([p2 for (_, p2), _ in rows]),
        stack([q1 for _, (q1, _) in rows]),
        stack([q2 for _, (_, q2) in rows]),
    )
    assert got.tolist() == want


@settings(max_examples=100, deadline=None)
@given(
    traces=st.lists(st.lists(segment_st, max_size=6), min_size=2, max_size=6),
    data=st.data(),
)
def test_pair_intersection_counts_match_scalar_loop(traces, data):
    keyed = {(k, k + 1): trace for k, trace in enumerate(traces)}
    keys = sorted(keyed)
    all_pairs = [
        (a, b) for i, a in enumerate(keys) for b in keys[i + 1 :]
    ]
    pairs = data.draw(st.permutations(all_pairs).map(lambda p: p[: len(p)]))
    got = _pair_intersection_counts(keyed, pairs)
    assert got == {
        pair: _trace_intersections(keyed[pair[0]], keyed[pair[1]])
        for pair in pairs
    }


def test_pair_intersection_counts_empty_inputs():
    assert _pair_intersection_counts({}, []) == {}
    keyed = {(0, 1): [], (2, 3): []}
    assert _pair_intersection_counts(keyed, [((0, 1), (2, 3))]) == {
        ((0, 1), (2, 3)): 0
    }


def test_empty_and_single_trace_layouts():
    nl = QuantumNetlist()
    nl.add_qubit(Qubit(index=0, w=3, h=3, x=1.5, y=1.5))
    nl.add_qubit(Qubit(index=1, w=3, h=3, x=13.5, y=1.5))
    bins = BinGrid(SiteGrid(COLS, ROWS))
    for q in nl.qubits:
        bins.occupy_rect(q.rect, q.node_id)
    assert count_crossings(nl, bins).total == 0  # no resonators at all

    r = nl.add_resonator(Resonator(qi=0, qj=1, wirelength=1.0))
    r.blocks = []  # a resonator with no blocks has an empty trace set
    report = count_crossings(nl, bins)
    assert report.total == 0
    assert _candidate_pairs([r.key], {r.key: trace_bbox([])}) == []