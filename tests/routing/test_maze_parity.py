"""Parity: the array Dijkstra equals the historical tuple-keyed router.

The reference below is a faithful transcription of the original pure-Python
``MazeRouter.route`` (dict/set state, ``(col, row)`` tuple keys).  The
array implementation must return the *same path* — not just the same cost —
on randomized grids, because the detailed placer's accept decisions depend
on where the corridor lands.  Flat indices are column-major precisely so
heap tie-breaking matches tuple ordering; these tests pin that invariant.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import SiteGrid
from repro.legalization import BinGrid
from repro.routing import MazeRouter
from repro.routing.maze import RouteResult


def _reference_site_cost(router, site, own_key, extra_cost=None):
    owner = router.bins.occupant(*site)
    if owner is None:
        base = router.step_cost
    elif owner[0] == "q":
        return None
    elif owner[0] == "b" and owner[1] == own_key:
        base = router.own_cost
    else:
        base = router.crossing_cost
    if extra_cost is not None:
        base += extra_cost(site)
    return base


def _in_window(site, window):
    lo_col, lo_row, hi_col, hi_row = window
    return lo_col <= site[0] <= hi_col and lo_row <= site[1] <= hi_row


def reference_route(router, sources, targets, own_key, window=None, extra_cost=None):
    """The original tuple-keyed Dijkstra, verbatim."""
    if not sources or not targets:
        return None
    grid = router.bins.grid
    target_set = set(targets)
    dist = {}
    prev = {}
    heap = []
    for site in sources:
        if window is not None and not _in_window(site, window):
            continue
        dist[site] = 0.0
        heapq.heappush(heap, (0.0, site))

    visited = set()
    found = None
    while heap:
        d, site = heapq.heappop(heap)
        if site in visited:
            continue
        visited.add(site)
        if site in target_set:
            found = site
            break
        for neighbor in grid.neighbors4(*site):
            if neighbor in visited:
                continue
            if window is not None and not _in_window(neighbor, window):
                continue
            if neighbor in target_set:
                cost = router.step_cost
            else:
                cost = _reference_site_cost(router, neighbor, own_key, extra_cost)
                if cost is None:
                    continue
            nd = d + cost
            if neighbor not in dist or nd < dist[neighbor]:
                dist[neighbor] = nd
                prev[neighbor] = site
                heapq.heappush(heap, (nd, neighbor))

    if found is None:
        return None
    path = [found]
    while path[-1] in prev:
        path.append(prev[path[-1]])
    path.reverse()
    crossings = []
    for site in path:
        owner = router.bins.occupant(*site)
        if owner is not None and owner[0] == "b" and owner[1] != own_key:
            crossings.append(owner)
    return RouteResult(path=path, cost=dist[found], crossings=crossings)


def _populated_bins(cols, rows, qubits, foreign, own, own_key):
    bins = BinGrid(SiteGrid(cols, rows))
    taken = set()
    for i, site in enumerate(sorted(qubits)):
        bins.occupy(site[0], site[1], ("q", i))
        taken.add(site)
    for i, site in enumerate(sorted(foreign)):
        if site not in taken:
            bins.occupy(site[0], site[1], ("b", (90, 91), i))
            taken.add(site)
    for i, site in enumerate(sorted(own)):
        if site not in taken:
            bins.occupy(site[0], site[1], ("b", own_key, i))
            taken.add(site)
    return bins


site_st = st.tuples(st.integers(0, 8), st.integers(0, 7))
site_sets = st.sets(site_st, max_size=20)


@settings(max_examples=60, deadline=None)
@given(
    qubits=site_sets,
    foreign=site_sets,
    own=site_sets,
    sources=st.sets(site_st, min_size=1, max_size=4),
    targets=st.sets(site_st, min_size=1, max_size=4),
)
def test_route_matches_reference_exactly(qubits, foreign, own, sources, targets):
    own_key = (0, 1)
    bins = _populated_bins(9, 8, qubits, foreign, own, own_key)
    router = MazeRouter(bins)
    got = router.route(set(sources), set(targets), own_key)
    want = reference_route(router, set(sources), set(targets), own_key)
    if want is None:
        assert got is None
        return
    assert got is not None
    assert got.cost == want.cost  # bit-equal, not approximate
    assert got.path == want.path
    assert got.crossings == want.crossings


@settings(max_examples=40, deadline=None)
@given(
    foreign=site_sets,
    sources=st.sets(site_st, min_size=1, max_size=3),
    targets=st.sets(site_st, min_size=1, max_size=3),
    lo_col=st.integers(0, 4),
    lo_row=st.integers(0, 4),
    w=st.integers(0, 6),
    h=st.integers(0, 5),
)
def test_windowed_route_matches_reference(
    foreign, sources, targets, lo_col, lo_row, w, h
):
    own_key = (0, 1)
    bins = _populated_bins(9, 8, set(), foreign, set(), own_key)
    router = MazeRouter(bins)
    window = (lo_col, lo_row, min(8, lo_col + w), min(7, lo_row + h))
    got = router.route(set(sources), set(targets), own_key, window=window)
    want = reference_route(
        router, set(sources), set(targets), own_key, window=window
    )
    if want is None:
        assert got is None
    else:
        assert got is not None
        assert got.cost == want.cost
        assert got.path == want.path
        assert got.crossings == want.crossings


@settings(max_examples=30, deadline=None)
@given(
    foreign=site_sets,
    sources=st.sets(site_st, min_size=1, max_size=3),
    targets=st.sets(site_st, min_size=1, max_size=3),
    px=st.integers(0, 8),
    weight=st.floats(0.5, 30.0, allow_nan=False),
)
def test_extra_cost_callable_matches_reference(foreign, sources, targets, px, weight):
    own_key = (0, 1)
    bins = _populated_bins(9, 8, set(), foreign, set(), own_key)
    router = MazeRouter(bins)

    def penalty(site):
        return weight if site[0] == px else 0.0

    got = router.route(set(sources), set(targets), own_key, extra_cost=penalty)
    want = reference_route(
        router, set(sources), set(targets), own_key, extra_cost=penalty
    )
    if want is None:
        assert got is None
    else:
        assert got is not None
        assert got.cost == want.cost
        assert got.path == want.path


@settings(max_examples=40, deadline=None)
@given(qubits=site_sets, foreign=site_sets, own=site_sets)
def test_vectorized_cost_array_matches_scalar_model(qubits, foreign, own):
    own_key = (0, 1)
    bins = _populated_bins(9, 8, qubits, foreign, own, own_key)
    router = MazeRouter(bins)
    cost = router._build_cost(own_key, None, None)
    rows = bins.grid.rows
    for col in range(bins.grid.cols):
        for row in range(rows):
            ref = _reference_site_cost(router, (col, row), own_key)
            flat = col * rows + row
            if ref is None:
                assert cost[flat] == float("inf")
            else:
                assert cost[flat] == ref
