"""Parity: vectorized bridged-block sampling equals the scalar walk.

The reference below transcribes the original per-sample Python loop; the
vectorized gather in ``routing.crossings`` must report the same foreign
block set for arbitrary traces, including segments leaving the grid.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import SiteGrid
from repro.legalization import BinGrid
from repro.routing.crossings import _bridged_blocks, trace_site_indices

COLS, ROWS = 9, 8


def reference_bridged(trace, own_key, bins):
    grid = bins.grid
    lb = grid.lb
    bridged = set()
    for (x1, y1), (x2, y2) in trace:
        length = ((x2 - x1) ** 2 + (y2 - y1) ** 2) ** 0.5
        steps = max(1, int(length / (0.45 * lb)))
        for k in range(steps + 1):
            t = k / steps
            x = x1 + (x2 - x1) * t
            y = y1 + (y2 - y1) * t
            col = int(x // lb)
            row = int(y // lb)
            if not grid.in_grid(col, row):
                continue
            owner = bins.occupant(col, row)
            if owner is not None and owner[0] == "b" and owner[1] != own_key:
                bridged.add(owner)
    return bridged


coord = st.floats(-2.0, 11.0, allow_nan=False, allow_infinity=False)
point = st.tuples(coord, coord)
trace_st = st.lists(st.tuples(point, point), max_size=5)
site_st = st.tuples(st.integers(0, COLS - 1), st.integers(0, ROWS - 1))


@settings(max_examples=60, deadline=None)
@given(
    trace=trace_st,
    foreign=st.sets(site_st, max_size=25),
    own=st.sets(site_st, max_size=10),
    qubits=st.sets(site_st, max_size=8),
)
def test_bridged_blocks_match_scalar_walk(trace, foreign, own, qubits):
    own_key = (0, 1)
    bins = BinGrid(SiteGrid(COLS, ROWS))
    taken = set()
    for i, site in enumerate(sorted(qubits)):
        bins.occupy(site[0], site[1], ("q", i))
        taken.add(site)
    for i, site in enumerate(sorted(foreign - taken)):
        bins.occupy(site[0], site[1], ("b", (7, 9), i))
        taken.add(site)
    for i, site in enumerate(sorted(own - taken)):
        bins.occupy(site[0], site[1], ("b", own_key, i))

    want = reference_bridged(trace, own_key, bins)
    assert _bridged_blocks(trace, own_key, bins) == want
    # The cached-samples path gives the same answer.
    samples = trace_site_indices(trace, bins)
    assert _bridged_blocks(trace, own_key, bins, samples) == want
