"""Golden flow fingerprints: the full qGDP flow, pinned per topology.

Each committed baseline under ``baselines/`` records the SHA-256 of the
flow's final positions plus the headline metrics for one paper topology.
These tests assert an exact match, so *any* change to placement
arithmetic — LP presolve, arc reduction, cluster extraction, crossing
counting — either reproduces the historical flow bit-for-bit or fails
here.  Deliberate changes are re-baselined with::

    PYTHONPATH=src python tools/write_baselines.py

which prints the field-level diff to commit alongside the change.
"""

import json
from pathlib import Path

import pytest

from repro.evaluation.fingerprint import fingerprint_diff, flow_fingerprint
from repro.topologies.registry import PAPER_TOPOLOGIES

BASELINE_DIR = Path(__file__).resolve().parent / "baselines"


def test_every_paper_topology_has_a_committed_baseline():
    missing = [
        name
        for name in PAPER_TOPOLOGIES
        if not (BASELINE_DIR / f"{name}.json").exists()
    ]
    assert not missing, (
        f"no golden baseline for {missing}; run tools/write_baselines.py"
    )


@pytest.mark.parametrize("topology", PAPER_TOPOLOGIES)
def test_flow_fingerprint_matches_baseline(topology):
    path = BASELINE_DIR / f"{topology}.json"
    if not path.exists():
        pytest.skip(f"baseline for {topology} not committed yet")
    baseline = json.loads(path.read_text())
    fresh = flow_fingerprint(topology)
    diff = fingerprint_diff(baseline, fresh)
    assert not diff, (
        "golden fingerprint drifted (deliberate? rerun "
        "tools/write_baselines.py and commit the diff):\n  "
        + "\n  ".join(diff)
    )
