"""Evaluation harness sweeps."""

import pytest

from repro.core.config import QGDPConfig
from repro.evaluation import (
    EvaluationConfig,
    evaluate_engines,
    evaluate_fidelity,
    format_fig8,
    format_fig9,
    format_table2,
    format_table3,
)


@pytest.fixture(scope="module")
def small_eval():
    return EvaluationConfig(
        num_seeds=3, config=QGDPConfig(gp_iterations=60)
    )


@pytest.fixture(scope="module")
def fidelity_cells(small_eval):
    return evaluate_fidelity(
        ["falcon"], ["bv-4", "qaoa-4"], ["qgdp", "tetris"], small_eval
    )


@pytest.fixture(scope="module")
def engine_evals(small_eval):
    return {
        "falcon": evaluate_engines(
            "falcon", ["qgdp", "tetris"], small_eval, with_dp_for=("qgdp",)
        )
    }


def test_all_cells_present(fidelity_cells):
    for bench in ("bv-4", "qaoa-4"):
        for engine in ("qgdp", "tetris"):
            assert ("falcon", bench, engine) in fidelity_cells


def test_cell_statistics_consistent(fidelity_cells):
    for cell in fidelity_cells.values():
        assert len(cell.samples) == 3
        assert cell.minimum <= cell.mean <= cell.maximum
        assert 0.0 <= cell.minimum and cell.maximum <= 1.0


def test_qgdp_at_least_matches_tetris(fidelity_cells):
    for bench in ("bv-4", "qaoa-4"):
        qgdp = fidelity_cells[("falcon", bench, "qgdp")].mean
        tetris = fidelity_cells[("falcon", bench, "tetris")].mean
        assert qgdp >= tetris - 1e-9


def test_engine_evaluation_fields(engine_evals):
    ev = engine_evals["falcon"]["qgdp"]
    assert ev.metrics.legality_violations == 0
    assert ev.qubit_time_s > 0
    assert ev.dp_metrics is not None
    assert ev.dp_time_s > 0
    assert engine_evals["falcon"]["tetris"].dp_metrics is None


def test_formatters_produce_tables(fidelity_cells, engine_evals):
    fig8 = format_fig8(
        fidelity_cells, ["falcon"], ["bv-4", "qaoa-4"], ["qgdp", "tetris"]
    )
    assert "falcon" in fig8 and "qGDP-LG" in fig8
    fig9 = format_fig9(engine_evals, ["falcon"], ["qgdp", "tetris"])
    assert "Ph (%)" in fig9 and "Coupler Crosses" in fig9
    t2 = format_table2(engine_evals, ["falcon"], ["qgdp", "tetris"])
    assert "Mean" in t2
    t3 = format_table3(engine_evals, ["falcon"])
    assert "LG Iedge" in t3


def test_oversized_benchmarks_skipped(small_eval):
    cells = evaluate_fidelity(["grid"], ["bv-16"], ["qgdp"], small_eval)
    assert ("grid", "bv-16", "qgdp") in cells  # 16 fits the 25-qubit grid


# -- cached tables path: metrics jobs ----------------------------------------


def test_metrics_job_matches_in_process_computation(small_eval):
    """The metrics artifact must report exactly what a live in-process
    layout_metrics call reports, for both the LG and the DP stage."""
    from repro.detailed.placer import DetailedPlacer
    from repro.legalization.engines import get_engine, run_legalization
    from repro.metrics.report import layout_metrics
    from repro.placement.builder import build_layout
    from repro.placement.global_placer import GlobalPlacer
    from repro.topologies import get_topology

    config = small_eval.config
    netlist, grid = build_layout(get_topology("grid"), config)
    GlobalPlacer(config).run(netlist, grid, seed=config.seed)
    outcome = run_legalization(netlist, grid, get_engine("qgdp"), config)
    lg_ref = layout_metrics(netlist, outcome.bins, config)
    DetailedPlacer(config).run(netlist, outcome.bins)
    dp_ref = layout_metrics(netlist, outcome.bins, config)

    evaluations = evaluate_engines("grid", ["qgdp"], small_eval)
    assert evaluations["qgdp"].metrics == lg_ref
    assert evaluations["qgdp"].dp_metrics == dp_ref


def test_run_engine_evaluations_warm_cache_is_identical(small_eval, tmp_path):
    from repro.evaluation import run_engine_evaluations

    cache = str(tmp_path / "cache")
    cold = run_engine_evaluations(
        ["grid"], ["qgdp", "tetris"], small_eval, cache_dir=cache
    )
    assert cold.stats.computed > 0 and cold.stats.cached == 0
    warm = run_engine_evaluations(
        ["grid"], ["qgdp", "tetris"], small_eval, cache_dir=cache, resume=True
    )
    assert warm.stats.computed == 0
    assert warm.stats.cached == cold.stats.computed
    # Bit-identical down to the cached wall-clock timings.
    assert warm.evaluations == cold.evaluations
    assert warm.rows == cold.rows
    assert warm.manifest["run_id"] == cold.manifest["run_id"]
    assert warm.manifest["run_id"].endswith("-tables")


def test_engine_evaluations_share_sweep_layout_artifacts(small_eval, tmp_path):
    """A fidelity sweep and a tables run over the same topology share the
    gp/lg artifacts through a common cache directory."""
    from repro.evaluation import run_engine_evaluations, sweep_spec
    from repro.orchestration import run_sweep

    cache = str(tmp_path / "cache")
    spec = sweep_spec(["grid"], ["bv-4"], ["tetris"], small_eval)
    run_sweep(spec, cache_dir=cache)

    tables = run_engine_evaluations(
        ["grid"], ["tetris"], small_eval, cache_dir=cache, resume=True
    )
    by_kind = tables.stats.by_kind
    # gp and lg come from the sweep's artifacts; only metrics is new.
    assert by_kind["gp"]["cached"] == 1
    assert by_kind["lg"]["cached"] == 1
    assert by_kind["metrics"]["computed"] == 1
