"""Evaluation harness sweeps."""

import pytest

from repro.core.config import QGDPConfig
from repro.evaluation import (
    EvaluationConfig,
    evaluate_engines,
    evaluate_fidelity,
    format_fig8,
    format_fig9,
    format_table2,
    format_table3,
)


@pytest.fixture(scope="module")
def small_eval():
    return EvaluationConfig(
        num_seeds=3, config=QGDPConfig(gp_iterations=60)
    )


@pytest.fixture(scope="module")
def fidelity_cells(small_eval):
    return evaluate_fidelity(
        ["falcon"], ["bv-4", "qaoa-4"], ["qgdp", "tetris"], small_eval
    )


@pytest.fixture(scope="module")
def engine_evals(small_eval):
    return {
        "falcon": evaluate_engines(
            "falcon", ["qgdp", "tetris"], small_eval, with_dp_for=("qgdp",)
        )
    }


def test_all_cells_present(fidelity_cells):
    for bench in ("bv-4", "qaoa-4"):
        for engine in ("qgdp", "tetris"):
            assert ("falcon", bench, engine) in fidelity_cells


def test_cell_statistics_consistent(fidelity_cells):
    for cell in fidelity_cells.values():
        assert len(cell.samples) == 3
        assert cell.minimum <= cell.mean <= cell.maximum
        assert 0.0 <= cell.minimum and cell.maximum <= 1.0


def test_qgdp_at_least_matches_tetris(fidelity_cells):
    for bench in ("bv-4", "qaoa-4"):
        qgdp = fidelity_cells[("falcon", bench, "qgdp")].mean
        tetris = fidelity_cells[("falcon", bench, "tetris")].mean
        assert qgdp >= tetris - 1e-9


def test_engine_evaluation_fields(engine_evals):
    ev = engine_evals["falcon"]["qgdp"]
    assert ev.metrics.legality_violations == 0
    assert ev.qubit_time_s > 0
    assert ev.dp_metrics is not None
    assert ev.dp_time_s > 0
    assert engine_evals["falcon"]["tetris"].dp_metrics is None


def test_formatters_produce_tables(fidelity_cells, engine_evals):
    fig8 = format_fig8(
        fidelity_cells, ["falcon"], ["bv-4", "qaoa-4"], ["qgdp", "tetris"]
    )
    assert "falcon" in fig8 and "qGDP-LG" in fig8
    fig9 = format_fig9(engine_evals, ["falcon"], ["qgdp", "tetris"])
    assert "Ph (%)" in fig9 and "Coupler Crosses" in fig9
    t2 = format_table2(engine_evals, ["falcon"], ["qgdp", "tetris"])
    assert "Mean" in t2
    t3 = format_table3(engine_evals, ["falcon"])
    assert "LG Iedge" in t3


def test_oversized_benchmarks_skipped(small_eval):
    cells = evaluate_fidelity(["grid"], ["bv-16"], ["qgdp"], small_eval)
    assert ("grid", "bv-16", "qgdp") in cells  # 16 fits the 25-qubit grid
