"""End-to-end determinism: identical seeds give identical results."""

import pytest

from repro.core.config import QGDPConfig
from repro.core.pipeline import run_flow
from repro.evaluation import EvaluationConfig, evaluate_fidelity


def _flow_fingerprint(seed: int):
    cfg = QGDPConfig(gp_iterations=50, seed=seed)
    flow, result = run_flow("falcon", engine="qgdp", detailed=True, config=cfg)
    return (
        result.final.positions,
        result.final.metrics["iedge"],
        result.final.metrics["crossings"],
    )


def test_flow_deterministic_given_seed():
    assert _flow_fingerprint(3) == _flow_fingerprint(3)


def test_flow_varies_with_seed():
    assert _flow_fingerprint(3)[0] != _flow_fingerprint(4)[0]


@pytest.mark.parametrize("engine", ["qgdp", "tetris"])
def test_fidelity_sweep_deterministic(engine):
    def sweep():
        eval_config = EvaluationConfig(
            num_seeds=3, config=QGDPConfig(gp_iterations=50)
        )
        cells = evaluate_fidelity(["grid"], ["bv-4"], [engine], eval_config)
        return cells[("grid", "bv-4", engine)].samples

    assert sweep() == sweep()
