"""Table formatters: structure and edge cases."""

import pytest

from repro.evaluation.harness import EngineEvaluation, FidelityCell
from repro.evaluation.tables import (
    format_fig8,
    format_fig9,
    format_table2,
    format_table3,
)
from repro.metrics.report import LayoutMetrics


def _metrics(**overrides):
    base = dict(
        num_cells=100,
        unified=9,
        total_resonators=10,
        clusters=11,
        crossings=2,
        ph_percent=1.25,
        hq=4,
        legality_violations=0,
        spacing_violations=0,
    )
    base.update(overrides)
    return LayoutMetrics(**base)


def _evaluation(engine, dp=False):
    ev = EngineEvaluation(
        topology="grid",
        engine=engine,
        metrics=_metrics(),
        qubit_time_s=0.010,
        resonator_time_s=0.002,
    )
    if dp:
        ev.dp_metrics = _metrics(unified=10, crossings=1, ph_percent=0.5, hq=2)
        ev.dp_time_s = 0.05
    return ev


def test_fig8_formats_missing_cells_as_dash():
    cells = {
        ("grid", "bv-4", "qgdp"): FidelityCell(
            "grid", "bv-4", "qgdp", mean=0.5, minimum=0.4, maximum=0.6
        )
    }
    text = format_fig8(cells, ["grid"], ["bv-4", "bv-16"], ["qgdp"])
    assert "0.5000" in text
    assert "-" in text  # the missing bv-16 cell


def test_fig8_small_values_printed_as_below_threshold():
    cells = {
        ("grid", "bv-4", "qgdp"): FidelityCell(
            "grid", "bv-4", "qgdp", mean=5e-5, minimum=0.0, maximum=1e-4
        )
    }
    text = format_fig8(cells, ["grid"], ["bv-4"], ["qgdp"])
    assert "<1e-4" in text


def test_fig9_contains_means():
    evaluations = {"grid": {"qgdp": _evaluation("qgdp")}}
    text = format_fig9(evaluations, ["grid"], ["qgdp"])
    assert "Ph (%)" in text
    assert "1.25" in text
    assert "Coupler Crosses" in text


def test_table2_mean_row():
    evaluations = {
        "grid": {"qgdp": _evaluation("qgdp")},
        "falcon": {"qgdp": _evaluation("qgdp")},
    }
    text = format_table2(evaluations, ["grid", "falcon"], ["qgdp"])
    assert text.splitlines()[-1].startswith("Mean")
    assert "10.00" in text  # 0.010 s -> 10 ms


def test_table3_uses_lg_when_dp_missing():
    evaluations = {"grid": {"qgdp": _evaluation("qgdp", dp=False)}}
    text = format_table3(evaluations, ["grid"])
    assert "9/10" in text


def test_table3_shows_dp_improvement():
    evaluations = {"grid": {"qgdp": _evaluation("qgdp", dp=True)}}
    text = format_table3(evaluations, ["grid"])
    assert "10/10" in text and "9/10" in text


def test_iedge_property():
    assert _metrics().iedge == "9/10"
