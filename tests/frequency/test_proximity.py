"""The τ frequency-proximity weight."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.frequency import tau

freqs = st.floats(4.0, 9.0, allow_nan=False)


def test_resonant_pair_is_one():
    assert tau(5.0, 5.0, delta_c=0.1) == 1.0


def test_beyond_threshold_is_zero():
    assert tau(5.0, 5.2, delta_c=0.1) == 0.0
    assert tau(5.0, 5.1, delta_c=0.1) == pytest.approx(0.0, abs=1e-9)


def test_linear_ramp():
    assert tau(5.0, 5.05, delta_c=0.1) == pytest.approx(0.5)


def test_rejects_nonpositive_threshold():
    with pytest.raises(ValueError):
        tau(5.0, 5.0, delta_c=0.0)


@given(freqs, freqs)
def test_bounded_and_symmetric(fa, fb):
    value = tau(fa, fb, delta_c=0.05)
    assert 0.0 <= value <= 1.0
    assert value == tau(fb, fa, delta_c=0.05)


@given(freqs, st.floats(0.0, 0.2), st.floats(0.0, 0.2))
def test_monotone_in_detuning(f, d1, d2):
    lo, hi = sorted((d1, d2))
    assert tau(f, f + hi, 0.1) <= tau(f, f + lo, 0.1)


@given(freqs, freqs, st.floats(0.01, 1.0), st.floats(0.01, 1.0))
def test_monotone_in_threshold(fa, fb, c1, c2):
    lo, hi = sorted((c1, c2))
    assert tau(fa, fb, lo) <= tau(fa, fb, hi) + 1e-12
