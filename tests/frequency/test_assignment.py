"""Frequency allocation: coloring quality, scatter, determinism."""

import pytest

from repro.core.config import QGDPConfig
from repro.frequency import assign_frequencies
from repro.frequency.assignment import (
    DEFAULT_QUBIT_BANDS,
    DEFAULT_RESONATOR_BANDS,
)
from repro.placement import build_layout
from repro.topologies import get_topology


def _fresh(topology_name: str):
    cfg = QGDPConfig(gp_iterations=1)
    topo = get_topology(topology_name)
    netlist, _grid = build_layout(topo, cfg)
    return (topo, netlist)


def _band_of(freq: float, bands: tuple) -> float:
    return min(bands, key=lambda b: abs(b - freq))


def test_no_coupled_qubits_share_a_band():
    topo, netlist = _fresh("falcon")
    plan = assign_frequencies(
        netlist, topo, qubit_scatter=0.0, resonator_scatter=0.0
    )
    for qi, qj in topo.edges:
        assert plan.qubit_freq[qi] != plan.qubit_freq[qj]


def test_qubit_sharing_resonators_never_share_a_band():
    topo, netlist = _fresh("aspen11")
    plan = assign_frequencies(
        netlist, topo, qubit_scatter=0.0, resonator_scatter=0.0
    )
    for r1 in netlist.resonators:
        for r2 in netlist.resonators:
            if r1.key >= r2.key:
                continue
            if set(r1.key) & set(r2.key):
                assert plan.resonator_freq[r1.key] != plan.resonator_freq[r2.key]


def test_blocks_inherit_resonator_frequency():
    _topo, netlist = _fresh("grid")
    for resonator in netlist.resonators:
        for block in resonator.blocks:
            assert block.frequency == resonator.frequency


def test_scatter_moves_frequencies_off_band():
    _topo, netlist = _fresh("grid")
    off_band = [
        q.frequency
        for q in netlist.qubits
        if min(abs(q.frequency - b) for b in DEFAULT_QUBIT_BANDS) > 1e-6
    ]
    assert off_band, "fabrication scatter should move most qubits off-band"


def test_assignment_is_deterministic():
    topo = get_topology("falcon")
    cfg = QGDPConfig(gp_iterations=1)
    nl1, _ = build_layout(topo, cfg)
    nl2, _ = build_layout(topo, cfg)
    assert [q.frequency for q in nl1.qubits] == [q.frequency for q in nl2.qubits]
    assert [r.frequency for r in nl1.resonators] == [
        r.frequency for r in nl2.resonators
    ]


def test_zero_scatter_lands_exactly_on_bands():
    topo = get_topology("grid")
    cfg = QGDPConfig(gp_iterations=1)
    netlist, _grid = build_layout(topo, cfg)
    plan = assign_frequencies(
        netlist, topo, qubit_scatter=0.0, resonator_scatter=0.0
    )
    for freq in plan.qubit_freq.values():
        assert freq in DEFAULT_QUBIT_BANDS
    for freq in plan.resonator_freq.values():
        assert freq in DEFAULT_RESONATOR_BANDS


def test_collisions_empty_for_colorable_graph():
    topo = get_topology("grid")
    cfg = QGDPConfig(gp_iterations=1)
    netlist, _grid = build_layout(topo, cfg)
    plan = assign_frequencies(
        netlist, topo, qubit_scatter=0.0, resonator_scatter=0.0
    )
    assert plan.collisions(topo) == []


def test_rejects_empty_bands():
    topo, netlist = _fresh("grid")
    with pytest.raises(ValueError):
        assign_frequencies(netlist, topo, qubit_bands=())


def test_rejects_negative_scatter():
    topo, netlist = _fresh("grid")
    with pytest.raises(ValueError):
        assign_frequencies(netlist, topo, qubit_scatter=-1.0)
