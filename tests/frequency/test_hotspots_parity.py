"""Parity: the vectorized Eq. 4 trace walk equals the historical scalar walk.

The reference below is a faithful transcription of the original
``_trace_pairs`` (per-sample dict probes over the ``(2r+1)²``
neighborhood).  The vectorized implementation must return the *same
HotspotPair list* — same pairs, bit-equal contributions and gaps — because
the detailed placer's accept decisions and the Eq. 7 fidelity product
consume these numbers directly.  The scalar tail of the new walk replays
the historical sample/scan order exactly; these tests pin that invariant
on randomized layouts.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frequency.hotspots import HotspotPair, _trace_pairs, hotspot_pairs
from repro.frequency.proximity import tau
from repro.netlist import QuantumNetlist, Qubit, Resonator, WireBlock
from repro.netlist.traces import resonator_trace


def _reference_block_index(netlist, lb):
    """site -> (resonator_key, block), verbatim from the original."""
    index = {}
    for resonator in netlist.resonators:
        for block in resonator.blocks:
            col = int(block.x // lb)
            row = int(block.y // lb)
            index[(col, row)] = (resonator.key, block)
    return index


def reference_trace_pairs(netlist, reach, delta_c, lb=1.0, trace_step=0.5):
    """The original scalar ``_trace_pairs``, verbatim."""
    block_at = _reference_block_index(netlist, lb)
    radius = int(math.ceil(reach / lb))
    contributions = {}
    min_gap = {}

    for resonator in netlist.resonators:
        trace = resonator_trace(netlist, resonator, lb)
        for (x1, y1), (x2, y2) in trace:
            length = math.hypot(x2 - x1, y2 - y1)
            steps = max(1, int(length / (trace_step * lb)))
            sample_len = length / steps
            for k in range(steps + 1):
                t_frac = k / steps
                x = x1 + (x2 - x1) * t_frac
                y = y1 + (y2 - y1) * t_frac
                col = int(x // lb)
                row = int(y // lb)
                seen_here = set()
                for dc in range(-radius, radius + 1):
                    for dr in range(-radius, radius + 1):
                        entry = block_at.get((col + dc, row + dr))
                        if entry is None:
                            continue
                        other_key, block = entry
                        if other_key == resonator.key:
                            continue
                        if other_key in seen_here:
                            continue
                        dist = math.hypot(block.x - x, block.y - y)
                        if dist > reach:
                            continue
                        t = tau(resonator.frequency, block.frequency, delta_c)
                        if t <= 0.0:
                            continue
                        seen_here.add(other_key)
                        decay = max(0.0, 1.0 - dist / reach)
                        pair = (
                            min(resonator.key, other_key),
                            max(resonator.key, other_key),
                        )
                        contributions[pair] = (
                            contributions.get(pair, 0.0)
                            + sample_len * decay * t
                        )
                        min_gap[pair] = min(min_gap.get(pair, dist), dist)

    pairs = []
    for (key_a, key_b), contribution in sorted(contributions.items()):
        if contribution <= 0.0:
            continue
        fa = netlist.resonator(*key_a).frequency
        fb = netlist.resonator(*key_b).frequency
        pairs.append(
            HotspotPair(
                ("e", key_a),
                ("e", key_b),
                contribution,
                min_gap[(key_a, key_b)],
                tau(fa, fb, delta_c),
                contribution,
            )
        )
    return pairs


# Frequencies cluster around 7.0 GHz so some pairs resonate (Δc = 0.04)
# and others are safely detuned.
freq_st = st.sampled_from([6.98, 7.0, 7.01, 7.03, 7.1, 7.2])
coord_st = st.floats(0.2, 19.8, allow_nan=False, allow_infinity=False)
site_st = st.tuples(st.integers(0, 19), st.integers(0, 19))


@st.composite
def netlists(draw):
    nl = QuantumNetlist()
    num_qubits = draw(st.integers(4, 6))
    for index in range(num_qubits):
        nl.add_qubit(
            Qubit(
                index=index,
                w=3,
                h=3,
                x=draw(coord_st),
                y=draw(coord_st),
                frequency=draw(freq_st),
            )
        )
    endpoints = draw(
        st.sets(
            st.tuples(
                st.integers(0, num_qubits - 1), st.integers(0, num_qubits - 1)
            ).filter(lambda e: e[0] != e[1]),
            min_size=1,
            max_size=4,
        )
    )
    for qi, qj in sorted(endpoints):
        if nl.has_resonator(qi, qj):
            continue
        resonator = nl.add_resonator(
            Resonator(qi=qi, qj=qj, wirelength=4.0, frequency=draw(freq_st))
        )
        sites = draw(st.lists(site_st, min_size=1, max_size=8))
        freq = resonator.frequency
        resonator.blocks = [
            WireBlock(
                resonator_key=resonator.key,
                ordinal=k,
                x=c + draw(st.floats(0.1, 0.9)),
                y=r + draw(st.floats(0.1, 0.9)),
                frequency=freq,
            )
            for k, (c, r) in enumerate(sites)
        ]
    return nl


@settings(max_examples=60, deadline=None)
@given(nl=netlists(), reach=st.sampled_from([1.0, 2.0, 3.5]))
def test_trace_pairs_match_reference_exactly(nl, reach):
    got = _trace_pairs(nl, reach, 0.04, 1.0)
    want = reference_trace_pairs(nl, reach, 0.04)
    assert got == want  # bit-equal contributions, gaps and tau weights


@settings(max_examples=20, deadline=None)
@given(nl=netlists())
def test_hotspot_pairs_entry_point_matches_reference(nl):
    got = [p for p in hotspot_pairs(nl, 2.0, 0.04) if p.id_a[0] == "e"]
    want = reference_trace_pairs(nl, 2.0, 0.04)
    assert got == want


def test_precomputed_traces_are_honored():
    nl = QuantumNetlist()
    for index, x in ((0, 1.5), (1, 17.5), (2, 1.5), (3, 17.5)):
        y = 1.5 if index < 2 else 5.5
        nl.add_qubit(Qubit(index=index, w=3, h=3, x=x, y=y, frequency=5.0 + index * 0.07))
    r1 = nl.add_resonator(Resonator(qi=0, qj=1, wirelength=4.0, frequency=7.0))
    r1.blocks = [
        WireBlock(resonator_key=r1.key, ordinal=k, x=c + 0.5, y=1.5, frequency=7.0)
        for k, c in enumerate((3, 4, 14, 15))
    ]
    r2 = nl.add_resonator(Resonator(qi=2, qj=3, wirelength=4.0, frequency=7.0))
    r2.blocks = [
        WireBlock(resonator_key=r2.key, ordinal=k, x=c + 0.5, y=2.5, frequency=7.0)
        for k, c in enumerate(range(7, 12))
    ]
    traces = {r.key: resonator_trace(nl, r, 1.0) for r in nl.resonators}
    assert _trace_pairs(nl, 2.0, 0.04, 1.0, traces) == _trace_pairs(
        nl, 2.0, 0.04, 1.0
    )
