"""Hotspot metrics on synthetic layouts."""

import pytest

from repro.frequency.hotspots import (
    hotspot_pairs,
    hotspot_proportion,
    hotspot_report,
    resonator_hotspots,
)
from repro.netlist import QuantumNetlist, Qubit, Resonator, WireBlock


def _netlist(qubit_specs, resonator_specs):
    """qubit_specs: (index, x, y, freq); resonator_specs: (qi, qj, freq, sites)."""
    nl = QuantumNetlist()
    for index, x, y, freq in qubit_specs:
        nl.add_qubit(Qubit(index=index, w=3, h=3, x=x, y=y, frequency=freq))
    for qi, qj, freq, sites in resonator_specs:
        r = nl.add_resonator(
            Resonator(qi=qi, qj=qj, wirelength=max(1.0, float(len(sites))), frequency=freq)
        )
        r.blocks = [
            WireBlock(
                resonator_key=r.key, ordinal=k, x=c + 0.5, y=w + 0.5, frequency=freq
            )
            for k, (c, w) in enumerate(sites)
        ]
    return nl


def test_close_resonant_qubits_flagged():
    nl = _netlist(
        [(0, 1.5, 1.5, 5.0), (1, 5.5, 1.5, 5.0)],  # gap 1.0, same frequency
        [],
    )
    pairs = hotspot_pairs(nl, reach=2.0, delta_c=0.04)
    assert len(pairs) == 1
    assert pairs[0].id_a == ("q", 0) and pairs[0].id_b == ("q", 1)
    assert pairs[0].contribution > 0


def test_detuned_qubits_not_flagged():
    nl = _netlist(
        [(0, 1.5, 1.5, 5.0), (1, 5.5, 1.5, 5.2)],
        [],
    )
    assert hotspot_pairs(nl, reach=2.0, delta_c=0.04) == []


def test_distant_qubits_not_flagged():
    nl = _netlist(
        [(0, 1.5, 1.5, 5.0), (1, 20.5, 1.5, 5.0)],
        [],
    )
    assert hotspot_pairs(nl, reach=2.0, delta_c=0.04) == []


def test_unified_attached_resonator_has_no_trace_exposure():
    # One resonator between its qubits; a detuned bystander far away.
    nl = _netlist(
        [(0, 1.5, 1.5, 5.0), (1, 13.5, 1.5, 5.07), (2, 1.5, 20.5, 5.14), (3, 13.5, 20.5, 5.21)],
        [
            (0, 1, 7.0, [(c, 1) for c in range(3, 12)]),
            (2, 3, 7.0, [(c, 20) for c in range(3, 12)]),
        ],
    )
    pairs = hotspot_pairs(nl, reach=2.0, delta_c=0.04)
    assert [p for p in pairs if p.id_a[0] == "e"] == []


def test_split_resonator_chord_near_resonant_blocks_flagged():
    # Resonator (0,1) is split; its chord passes right next to blocks of
    # the same-frequency resonator (2,3).
    nl = _netlist(
        [
            (0, 1.5, 1.5, 5.0),
            (1, 17.5, 1.5, 5.07),
            (2, 1.5, 5.5, 5.14),
            (3, 17.5, 5.5, 5.21),
        ],
        [
            (0, 1, 7.0, [(3, 1), (4, 1), (14, 1), (15, 1)]),  # split w/ gap
            (2, 3, 7.0, [(c, 2) for c in range(7, 12)]),  # in the chord path
        ],
    )
    pairs = [p for p in hotspot_pairs(nl, reach=2.0, delta_c=0.04) if p.id_a[0] == "e"]
    assert pairs, "chord next to same-frequency blocks must be flagged"
    keys = {frozenset((p.id_a[1], p.id_b[1])) for p in pairs}
    assert frozenset(((0, 1), (2, 3))) in keys


def test_detuned_chord_not_flagged():
    nl = _netlist(
        [
            (0, 1.5, 1.5, 5.0),
            (1, 17.5, 1.5, 5.07),
            (2, 1.5, 5.5, 5.14),
            (3, 17.5, 5.5, 5.21),
        ],
        [
            (0, 1, 7.0, [(3, 1), (4, 1), (14, 1), (15, 1)]),
            (2, 3, 7.2, [(c, 2) for c in range(7, 12)]),  # well detuned
        ],
    )
    pairs = [p for p in hotspot_pairs(nl, reach=2.0, delta_c=0.04) if p.id_a[0] == "e"]
    assert pairs == []


def test_ph_normalized_by_area():
    nl = _netlist(
        [(0, 1.5, 1.5, 5.0), (1, 5.5, 1.5, 5.0)],
        [],
    )
    pairs = hotspot_pairs(nl, reach=2.0, delta_c=0.04)
    ph = hotspot_proportion(nl, reach=2.0, delta_c=0.04, pairs=pairs)
    total_area = 2 * 9.0
    expected = 100.0 * sum(p.contribution for p in pairs) / total_area
    assert ph == pytest.approx(expected)


def test_report_hq_counts_qubits_and_endpoints():
    nl = _netlist(
        [
            (0, 1.5, 1.5, 5.0),
            (1, 5.5, 1.5, 5.0),  # hotspot with qubit 0
            (2, 30.5, 1.5, 5.14),
            (3, 44.5, 1.5, 5.21),
        ],
        [],
    )
    report = hotspot_report(nl, reach=2.0, delta_c=0.04)
    assert report.hq == 2
    assert report.ph_percent > 0


def test_resonator_hotspots_zero_for_clean_layout():
    nl = _netlist(
        [(0, 1.5, 1.5, 5.0), (1, 13.5, 1.5, 5.07)],
        [(0, 1, 7.0, [(c, 1) for c in range(3, 12)])],
    )
    scores = resonator_hotspots(nl, reach=2.0, delta_c=0.04)
    assert scores == {(0, 1): 0.0}
