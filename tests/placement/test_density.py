"""Density map deposition and gradients."""

import numpy as np
import pytest

from repro.geometry import SiteGrid
from repro.placement import DensityMap


@pytest.fixture()
def density():
    return DensityMap(SiteGrid(cols=16, rows=16), bin_size=2.0)


def test_rejects_bad_bin_size():
    with pytest.raises(ValueError):
        DensityMap(SiteGrid(4, 4), bin_size=0.0)


def test_deposit_conserves_area(density):
    xs = np.array([1.0, 5.0, 9.0])
    ys = np.array([1.0, 5.0, 9.0])
    areas = np.array([1.0, 9.0, 1.0])
    density.deposit(xs, ys, areas)
    assert density.density.sum() == pytest.approx(11.0)


def test_deposit_replaces_previous(density):
    xs = np.array([1.0])
    ys = np.array([1.0])
    density.deposit(xs, ys, np.array([4.0]))
    density.deposit(xs, ys, np.array([2.0]))
    assert density.density.sum() == pytest.approx(2.0)


def test_bin_of_clipped(density):
    bx, by = density.bin_of(np.array([-10.0, 100.0]), np.array([-10.0, 100.0]))
    assert list(bx) == [0, density.nx - 1]
    assert list(by) == [0, density.ny - 1]


def test_gradient_points_away_from_peak(density):
    # Pile everything in the centre; gradient left of the peak is positive
    # (density increases to the right), so the spreading force -grad pushes
    # cells leftward.
    density.deposit(np.array([8.0]), np.array([8.0]), np.array([100.0]))
    gx_left, _ = density.gradient_at(np.array([5.0]), np.array([8.0]))
    gx_right, _ = density.gradient_at(np.array([11.0]), np.array([8.0]))
    assert gx_left[0] > 0
    assert gx_right[0] < 0


def test_smoothed_preserves_total(density):
    density.deposit(np.array([8.0]), np.array([8.0]), np.array([10.0]))
    assert density.smoothed().sum() == pytest.approx(10.0, rel=0.15)
