"""HPWL helpers."""

import pytest

from repro.placement import hpwl, total_hpwl


def test_hpwl_empty_is_zero():
    assert hpwl([]) == 0.0


def test_hpwl_single_point_zero():
    assert hpwl([(3.0, 4.0)]) == 0.0


def test_hpwl_two_pin():
    assert hpwl([(0.0, 0.0), (3.0, 4.0)]) == 7.0


def test_hpwl_bounding_box():
    pts = [(0, 0), (1, 5), (4, 2)]
    assert hpwl(pts) == 4 + 5


def test_total_hpwl_sums_nets():
    positions = {"a": (0.0, 0.0), "b": (1.0, 1.0), "c": (3.0, 0.0)}
    nets = [("a", "b"), ("b", "c")]
    assert total_hpwl(nets, positions) == pytest.approx(2.0 + 3.0)
