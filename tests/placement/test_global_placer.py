"""Global placer behaviour."""

import pytest

from repro.core.config import QGDPConfig
from repro.netlist import ConnectionStyle
from repro.placement import GlobalPlacer, build_layout, total_hpwl
from repro.topologies import get_topology


@pytest.fixture(scope="module")
def placed():
    cfg = QGDPConfig(gp_iterations=60)
    netlist, grid = build_layout(get_topology("falcon"), cfg)
    result = GlobalPlacer(cfg).run(netlist, grid, seed=3)
    return (cfg, netlist, grid, result)


def test_components_stay_in_border(placed):
    _cfg, netlist, grid, _result = placed
    border = grid.border
    for qubit in netlist.qubits:
        assert qubit.rect.inside(border, tol=1e-6)
    for block in netlist.wire_blocks:
        assert block.rect.inside(border, tol=1e-6)


def test_result_reports_positive_hpwl(placed):
    _cfg, _netlist, _grid, result = placed
    assert result.hpwl > 0
    assert result.iterations == 60
    assert result.max_bin_overflow > 0


def test_determinism_same_seed():
    cfg = QGDPConfig(gp_iterations=30)
    topo = get_topology("grid")
    nl1, g1 = build_layout(topo, cfg)
    GlobalPlacer(cfg).run(nl1, g1, seed=5)
    nl2, g2 = build_layout(topo, cfg)
    GlobalPlacer(cfg).run(nl2, g2, seed=5)
    assert nl1.snapshot() == nl2.snapshot()


def test_different_seeds_differ():
    cfg = QGDPConfig(gp_iterations=30)
    topo = get_topology("grid")
    nl1, g1 = build_layout(topo, cfg)
    GlobalPlacer(cfg).run(nl1, g1, seed=5)
    nl2, g2 = build_layout(topo, cfg)
    GlobalPlacer(cfg).run(nl2, g2, seed=6)
    assert nl1.snapshot() != nl2.snapshot()


def test_gp_improves_wirelength_over_seed():
    cfg = QGDPConfig(gp_iterations=120)
    topo = get_topology("falcon")
    netlist, grid = build_layout(topo, cfg)
    nets = netlist.nets(ConnectionStyle.PSEUDO)
    before = total_hpwl(
        nets, {nid: pos for nid, pos in netlist.snapshot().items()}
    )
    result = GlobalPlacer(cfg).run(netlist, grid, seed=1)
    assert result.hpwl < before


def test_frozen_qubits_do_not_move():
    cfg = QGDPConfig(gp_iterations=30)
    netlist, grid = build_layout(get_topology("grid"), cfg)
    before = {q.index: (q.x, q.y) for q in netlist.qubits}
    GlobalPlacer(cfg).run(netlist, grid, seed=1, move_qubits=False)
    after = {q.index: (q.x, q.y) for q in netlist.qubits}
    assert before == after


def test_pseudo_style_tightens_blocks():
    """Pseudo connections give a more compact post-GP resonator footprint."""
    cfg = QGDPConfig(gp_iterations=120)
    topo = get_topology("falcon")

    def mean_spread(style):
        netlist, grid = build_layout(topo, cfg)
        GlobalPlacer(cfg).run(netlist, grid, style=style, seed=2)
        spreads = []
        for r in netlist.resonators:
            xs = [b.x for b in r.blocks]
            ys = [b.y for b in r.blocks]
            spreads.append((max(xs) - min(xs)) + (max(ys) - min(ys)))
        return sum(spreads) / len(spreads)

    assert mean_spread(ConnectionStyle.PSEUDO) <= mean_spread(
        ConnectionStyle.SNAKE
    )
