"""Layout builder: substrate sizing and netlist instantiation."""

import math

import pytest

from repro.core.config import QGDPConfig
from repro.placement import build_layout, size_grid
from repro.topologies import PAPER_TOPOLOGIES, get_topology


@pytest.mark.parametrize("name", PAPER_TOPOLOGIES)
def test_build_layout_counts(name):
    cfg = QGDPConfig(gp_iterations=1)
    topo = get_topology(name)
    netlist, grid = build_layout(topo, cfg)
    assert netlist.num_qubits == topo.num_qubits
    assert netlist.num_resonators == topo.num_edges
    # Eq. 6 with the default reference length gives 11-12 blocks each.
    for resonator in netlist.resonators:
        assert resonator.num_blocks in (11, 12)


@pytest.mark.parametrize("name", PAPER_TOPOLOGIES)
def test_qubits_seeded_inside_border(name):
    cfg = QGDPConfig(gp_iterations=1)
    netlist, grid = build_layout(get_topology(name), cfg)
    border = grid.border
    for qubit in netlist.qubits:
        assert qubit.rect.inside(border)


def test_cell_counts_near_paper_table3():
    # Paper Table III #Cells: grid 490, falcon 354, eagle 1801.
    paper = {"grid": 490, "falcon": 354, "eagle": 1801}
    cfg = QGDPConfig(gp_iterations=1)
    for name, expected in paper.items():
        netlist, _ = build_layout(get_topology(name), cfg)
        assert abs(netlist.num_cells - expected) / expected < 0.06


def test_utilization_not_exceeded():
    cfg = QGDPConfig(gp_iterations=1)
    for name in ("grid", "falcon"):
        netlist, grid = build_layout(get_topology(name), cfg)
        total_area = sum(q.rect.area for q in netlist.qubits) + sum(
            b.rect.area for b in netlist.wire_blocks
        )
        assert total_area <= cfg.utilization * grid.width * grid.height * 1.02


def test_min_pair_spacing_feasible():
    """Closest seeded qubit pair leaves room for size + spacing."""
    cfg = QGDPConfig(gp_iterations=1)
    for name in PAPER_TOPOLOGIES:
        netlist, _grid = build_layout(get_topology(name), cfg)
        qs = netlist.qubits
        required = cfg.qubit_size + cfg.min_qubit_spacing
        min_dist = min(
            math.hypot(a.x - b.x, a.y - b.y)
            for i, a in enumerate(qs)
            for b in qs[i + 1 :]
        )
        assert min_dist >= required - 1.0  # snapping slack of one site


def test_size_grid_respects_total_area():
    cfg = QGDPConfig(gp_iterations=1)
    topo = get_topology("grid")
    grid, scale, offset = size_grid(topo, cfg, total_area=700.0)
    assert grid.width * grid.height * cfg.utilization >= 700.0 * 0.95
    assert scale > 0
    assert offset == (0.0, 0.0)


def test_resonator_wirelength_scales_with_frequency():
    cfg = QGDPConfig(gp_iterations=1)
    netlist, _ = build_layout(get_topology("grid"), cfg)
    for r in netlist.resonators:
        expected = cfg.resonator_length * 7.0 / r.frequency
        assert r.wirelength == pytest.approx(expected)
