#!/usr/bin/env python
"""Regenerate the golden flow fingerprints under tests/golden/baselines/.

The golden suite (``tests/golden/test_golden_fingerprints.py``) pins the
full qGDP flow — final positions hash, cluster counts, crossings,
hotspot percentage — per paper topology.  When a PR *deliberately*
changes placement arithmetic (a new LP presolve, a different arc set),
run this tool, review the printed diff, and commit the regenerated JSON
files alongside the change.  A golden test failing without a baseline
diff in the same PR means unintended drift.

Usage::

    PYTHONPATH=src python tools/write_baselines.py            # all topologies
    PYTHONPATH=src python tools/write_baselines.py --check    # diff only, rc 1 on drift
    PYTHONPATH=src python tools/write_baselines.py grid eagle # a subset

Exit code 0 when baselines are (now) current, 1 in ``--check`` mode when
they differ from a fresh run.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.evaluation.fingerprint import fingerprint_diff, flow_fingerprint
from repro.topologies.registry import PAPER_TOPOLOGIES

BASELINE_DIR = (
    Path(__file__).resolve().parent.parent / "tests" / "golden" / "baselines"
)


def baseline_path(topology: str) -> Path:
    return BASELINE_DIR / f"{topology}.json"


def load_baseline(topology: str) -> dict:
    path = baseline_path(topology)
    if not path.exists():
        return {}
    return json.loads(path.read_text())


def main(argv: list = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "topologies",
        nargs="*",
        default=list(PAPER_TOPOLOGIES),
        help="topologies to (re)fingerprint; default: all paper topologies",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="only diff against the committed baselines, write nothing",
    )
    args = parser.parse_args(argv)

    BASELINE_DIR.mkdir(parents=True, exist_ok=True)
    drifted = 0
    for topology in args.topologies:
        fresh = flow_fingerprint(topology)
        diff = fingerprint_diff(load_baseline(topology), fresh)
        if diff:
            drifted += 1
            print(f"{topology}:")
            for line in diff:
                print(f"  {line}")
        else:
            print(f"{topology}: unchanged")
        if not args.check and diff:
            baseline_path(topology).write_text(
                json.dumps(fresh, indent=2, sort_keys=True) + "\n"
            )
    if args.check and drifted:
        print(f"{drifted} baseline(s) drifted; rerun without --check to accept")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
