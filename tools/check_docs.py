#!/usr/bin/env python
"""Docs rot guard: link integrity, code-fence syntax, example imports.

Checks that every intra-repo markdown link (``[text](relative/path)``)
in the repository's ``*.md`` files resolves to an existing file, that
every ```` ```python ```` fence in the curated docs (``README.md`` and
``docs/*.md`` — not scratch files like SNIPPETS.md) at least *parses*
as Python, and — with ``--examples`` — that every ``examples/*.py``
script imports cleanly in import-only mode (their
``if __name__ == "__main__"`` guards keep the actual runs out; new
example scripts are discovered automatically).  It also keeps the
``docs/lint.md`` rule catalog in sync with the ``repro lint`` registry
(every registered rule id documented, no ghost headings).  CI runs all
of these; ``tests/test_docs.py`` runs the link and fence checks as part
of tier-1 so rotted docs fail locally too.

Usage::

    python tools/check_docs.py              # link + fence checks
    PYTHONPATH=src python tools/check_docs.py --examples

Exit code 0 when everything resolves, 1 otherwise (failures listed).
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import re
import sys

#: Inline markdown links: [text](target).  Targets with a scheme or a
#: pure-anchor target are external/self references, not file links.
_LINK = re.compile(r"\[[^\]\n]*\]\(([^)\s]+)\)")

_SKIPPED_DIRS = {".git", ".repro_cache", "__pycache__", ".pytest_cache"}


def _markdown_files(root: str) -> list:
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in _SKIPPED_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


def _strip_code_fences(text: str) -> str:
    """Drop fenced code blocks: their bracket/paren runs are not links."""
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            out.append(line)
    return "\n".join(out)


def check_links(root: str) -> list:
    """All broken intra-repo links as ``(md_file, target)`` pairs."""
    broken = []
    for md_path in _markdown_files(root):
        with open(md_path, "r", encoding="utf-8") as fh:
            text = _strip_code_fences(fh.read())
        for match in _LINK.finditer(text):
            target = match.group(1)
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), target_path)
            )
            if not os.path.exists(resolved):
                broken.append((os.path.relpath(md_path, root), target))
    return broken


def _python_fences(text: str) -> list:
    """``(first_line_number, source)`` for every ```python fence."""
    fences, buffer, start, in_python = [], [], 0, False
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.lstrip()
        if stripped.startswith("```"):
            if in_python:
                fences.append((start, "\n".join(buffer)))
                buffer, in_python = [], False
            elif stripped.rstrip() == "```python":
                start, in_python = number + 1, True
            continue
        if in_python:
            buffer.append(line)
    return fences


def check_fences(root: str) -> list:
    """Syntax-broken ```python fences in the curated docs.

    Returns ``(md_file, line, error)`` triples.  Only README.md and
    docs/*.md are checked — those are the documents whose examples
    users paste — so scratch markdown (SNIPPETS.md, ISSUE.md) stays
    free-form.  Fences are compiled, never executed.
    """
    curated = [os.path.join(root, "README.md")]
    docs_dir = os.path.join(root, "docs")
    if os.path.isdir(docs_dir):
        curated.extend(
            os.path.join(docs_dir, name)
            for name in sorted(os.listdir(docs_dir))
            if name.endswith(".md")
        )
    broken = []
    for md_path in curated:
        if not os.path.exists(md_path):
            continue
        with open(md_path, "r", encoding="utf-8") as fh:
            text = fh.read()
        for line, source in _python_fences(text):
            try:
                compile(source, f"{md_path}:{line}", "exec")
            except SyntaxError as exc:
                broken.append(
                    (os.path.relpath(md_path, root), line, str(exc))
                )
    return broken


def check_rule_catalog(root: str) -> list:
    """docs/lint.md catalog drift against the registered lint rules.

    Every registered rule id — plus the driver-level diagnostics
    (RPR000 unused-suppression, E001 parse error) — must own a ``###``
    heading in docs/lint.md, and every ``RPR``-shaped heading there
    must name a known id, so the catalog can neither lag a new rule
    nor keep advertising a deleted one.  Returns problem strings.
    """
    doc_rel = os.path.join("docs", "lint.md")
    doc_path = os.path.join(root, doc_rel)
    if not os.path.exists(doc_path):
        return [f"{doc_rel} is missing (the lint rule catalog)"]
    src = os.path.join(root, "src")
    if src not in sys.path:
        sys.path.insert(0, src)
    from repro.lint import PARSE_ERROR_ID, UNUSED_SUPPRESSION_ID, rule_ids

    with open(doc_path, "r", encoding="utf-8") as fh:
        text = _strip_code_fences(fh.read())
    headings = re.findall(r"^###\s+(\S+)", text, flags=re.MULTILINE)
    expected = set(rule_ids()) | {UNUSED_SUPPRESSION_ID, PARSE_ERROR_ID}
    problems = []
    for rule_id in sorted(expected - set(headings)):
        problems.append(
            f"{doc_rel}: no catalog heading for registered rule {rule_id}"
        )
    for heading in headings:
        if re.fullmatch(r"RPR\d{3}", heading) and heading not in expected:
            problems.append(
                f"{doc_rel}: heading {heading} names no registered rule"
            )
    return problems


def check_examples(root: str) -> list:
    """Import every examples/*.py; returns ``(script, error)`` failures."""
    failures = []
    examples_dir = os.path.join(root, "examples")
    if not os.path.isdir(examples_dir):
        return failures
    for name in sorted(os.listdir(examples_dir)):
        if not name.endswith(".py"):
            continue
        path = os.path.join(examples_dir, name)
        module_name = f"_example_{name[:-3]}"
        try:
            spec = importlib.util.spec_from_file_location(module_name, path)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append((os.path.relpath(path, root), f"{type(exc).__name__}: {exc}"))
        finally:
            sys.modules.pop(module_name, None)
    return failures


def main(argv: list = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--examples",
        action="store_true",
        help="also import examples/*.py (requires PYTHONPATH=src)",
    )
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: this script's parent's parent)",
    )
    args = parser.parse_args(argv)

    ok = True
    broken = check_links(args.root)
    for md_file, target in broken:
        print(f"broken link in {md_file}: {target}")
        ok = False
    if not broken:
        print(f"markdown links ok ({len(_markdown_files(args.root))} files)")

    bad_fences = check_fences(args.root)
    for md_file, line, error in bad_fences:
        print(f"broken python fence in {md_file}:{line}: {error}")
        ok = False
    if not bad_fences:
        print("python fences parse")

    catalog_problems = check_rule_catalog(args.root)
    for problem in catalog_problems:
        print(problem)
        ok = False
    if not catalog_problems:
        print("lint rule catalog matches the registry")

    if args.examples:
        failures = check_examples(args.root)
        for script, error in failures:
            print(f"example fails to import: {script}: {error}")
            ok = False
        if not failures:
            print("examples import cleanly")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
