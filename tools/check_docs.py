#!/usr/bin/env python
"""Docs rot guard: markdown link integrity + example importability.

Checks that every intra-repo markdown link (``[text](relative/path)``)
in the repository's ``*.md`` files resolves to an existing file, and —
with ``--examples`` — that every ``examples/*.py`` script imports
cleanly in import-only mode (their ``if __name__ == "__main__"`` guards
keep the actual runs out).  CI runs both; ``tests/test_docs.py`` runs
the link check as part of tier-1 so broken links fail locally too.

Usage::

    python tools/check_docs.py              # link check only
    PYTHONPATH=src python tools/check_docs.py --examples

Exit code 0 when everything resolves, 1 otherwise (failures listed).
"""

from __future__ import annotations

import argparse
import importlib.util
import os
import re
import sys

#: Inline markdown links: [text](target).  Targets with a scheme or a
#: pure-anchor target are external/self references, not file links.
_LINK = re.compile(r"\[[^\]\n]*\]\(([^)\s]+)\)")

_SKIPPED_DIRS = {".git", ".repro_cache", "__pycache__", ".pytest_cache"}


def _markdown_files(root: str) -> list:
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in _SKIPPED_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


def _strip_code_fences(text: str) -> str:
    """Drop fenced code blocks: their bracket/paren runs are not links."""
    out, fenced = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            continue
        if not fenced:
            out.append(line)
    return "\n".join(out)


def check_links(root: str) -> list:
    """All broken intra-repo links as ``(md_file, target)`` pairs."""
    broken = []
    for md_path in _markdown_files(root):
        with open(md_path, "r", encoding="utf-8") as fh:
            text = _strip_code_fences(fh.read())
        for match in _LINK.finditer(text):
            target = match.group(1)
            if "://" in target or target.startswith(("mailto:", "#")):
                continue
            target_path = target.split("#", 1)[0]
            if not target_path:
                continue
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(md_path), target_path)
            )
            if not os.path.exists(resolved):
                broken.append((os.path.relpath(md_path, root), target))
    return broken


def check_examples(root: str) -> list:
    """Import every examples/*.py; returns ``(script, error)`` failures."""
    failures = []
    examples_dir = os.path.join(root, "examples")
    if not os.path.isdir(examples_dir):
        return failures
    for name in sorted(os.listdir(examples_dir)):
        if not name.endswith(".py"):
            continue
        path = os.path.join(examples_dir, name)
        module_name = f"_example_{name[:-3]}"
        try:
            spec = importlib.util.spec_from_file_location(module_name, path)
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
        except Exception as exc:  # noqa: BLE001 - report, don't crash
            failures.append((os.path.relpath(path, root), f"{type(exc).__name__}: {exc}"))
        finally:
            sys.modules.pop(module_name, None)
    return failures


def main(argv: list = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--examples",
        action="store_true",
        help="also import examples/*.py (requires PYTHONPATH=src)",
    )
    parser.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: this script's parent's parent)",
    )
    args = parser.parse_args(argv)

    ok = True
    broken = check_links(args.root)
    for md_file, target in broken:
        print(f"broken link in {md_file}: {target}")
        ok = False
    if not broken:
        print(f"markdown links ok ({len(_markdown_files(args.root))} files)")

    if args.examples:
        failures = check_examples(args.root)
        for script, error in failures:
            print(f"example fails to import: {script}: {error}")
            ok = False
        if not failures:
            print("examples import cleanly")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
