#!/usr/bin/env python
"""Run ``repro lint`` over the repository without installing the package.

A thin wrapper for CI and pre-commit use: it puts ``src/`` on
``sys.path``, anchors the lint root at the repository (so display paths
and rule scopes are identical wherever you invoke it from), and defers
everything else to the ``repro lint`` CLI — flags pass straight
through::

    python tools/lint.py                      # all rules, all shipped code
    python tools/lint.py --format=github      # CI annotations
    python tools/lint.py --rule RPR003 src    # one rule, one tree

Exit code 0 = clean, 1 = findings, 2 = usage error (same contract as
``repro lint``).
"""

from __future__ import annotations

import os
import sys

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.cli import main  # noqa: E402  (path setup must precede)

if __name__ == "__main__":
    argv = ["lint", "--root", _ROOT] + sys.argv[1:]
    sys.exit(main(argv))
