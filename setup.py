"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that
``pip install -e .`` also works on older pip/setuptools stacks that lack
wheel support for PEP 660 editable installs.
"""

from setuptools import setup

setup()
